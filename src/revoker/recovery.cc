#include "revoker/recovery.h"

namespace crev::revoker {

RecoveryManager::RecoveryManager()
{
    // Protocol-specific defaults; the Machine overrides the epoch
    // ladder's envelope from WatchdogPolicy so the refactored watchdog
    // reproduces PR 1's timings exactly.
    RecoveryPolicy shootdown;
    shootdown.max_retries = 8;
    shootdown.deadline = 0;
    shootdown.backoff_base = 64;
    shootdown.max_backoff = 4096;
    setPolicy(RecoveryProtocol::kShootdownResend, shootdown);

    RecoveryPolicy repair;
    repair.max_retries = 4;
    repair.deadline = 0;
    repair.backoff_base = 0;
    repair.max_backoff = 0;
    setPolicy(RecoveryProtocol::kSummaryRepair, repair);

    RecoveryPolicy handoff;
    handoff.max_retries = 6;
    handoff.deadline = 0;
    handoff.backoff_base = 250'000;
    handoff.max_backoff = 16'000'000;
    setPolicy(RecoveryProtocol::kQuarantineHandoff, handoff);
}

} // namespace crev::revoker
