#include "revoker/cornucopia.h"

#include <vector>

#include "vm/address_space.h"

namespace crev::revoker {

void
CornucopiaRevoker::doEpoch(sim::SimThread &self)
{
    kern::EpochCounter &epoch = kernel_.epoch();
    vm::AddressSpace &as = mmu_.addressSpace();
    sim::SimMutex &pmap = as.pmapLock();

    epoch.advance(self); // odd
    snapshotAuditSet();

    EpochTiming timing;

    // Phase 1 (concurrent): visit all pages that have ever held
    // capabilities, clearing each page's dirty bit *before* sweeping
    // it so that mutator stores during the sweep re-flag the page.
    // Our re-implementation (paper §4.5) never clears cap_ever.
    const Cycles cbegin = self.now();
    tracePhaseBegin(self, trace::Phase::kConcurrentSweep);
    const std::vector<Addr> pages =
        collectPages(as.capEverPages(),
                     [](const vm::Pte &p) { return p.cap_ever; });
    prescanPages(pages);
    PublishOptions dirty_clear;
    dirty_clear.set_generation = false;
    dirty_clear.charge_and_shootdown = false;
    for (Addr va : pages) {
        pmap.lock(self);
        vm::Pte *p = as.findPte(va);
        if (p == nullptr || !p->valid) {
            pmap.unlock(self);
            continue;
        }
        sweep_.publishPage(self, *p, va, dirty_clear,
                           vm::PteContext::kLocked);
        pmap.unlock(self);
        sweep_.sweepPage(self, va);
    }
    prescanDone();
    tracePhaseEnd(self, trace::Phase::kConcurrentSweep);
    timing.concurrent_duration = self.now() - cbegin;

    // Phase 2 (stop-the-world): registers, hoards, and every page
    // re-dirtied while phase 1 ran.
    const Cycles begin = stwBegin(self);
    tracePhaseBegin(self, trace::Phase::kStwScan);
    scanRegistersAndHoards(self);
    // The cap-dirty index narrows the re-sweep to pages actually
    // re-dirtied during phase 1 without another full walk.
    const std::vector<Addr> redirtied =
        collectPages(as.capDirtyPages(),
                     [](const vm::Pte &p) { return p.cap_dirty; });
    for (Addr va : redirtied) {
        sweep_.sweepPage(self, va);
        vm::Pte *p = as.findPte(va);
        if (p != nullptr)
            sweep_.publishPage(self, *p, va, dirty_clear,
                               vm::PteContext::kStw);
    }
    timing.stw_duration = self.now() - begin;
    tracePhaseEnd(self, trace::Phase::kStwScan);
    sched_.resumeWorld(self);

    finishEpoch(self); // even
    timings_.push_back(timing);
}

} // namespace crev::revoker
