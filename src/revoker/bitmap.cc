#include "revoker/bitmap.h"

#include <algorithm>

#include "base/logging.h"
#include "check/race_checker.h"
#include "trace/trace.h"
#include "vm/address_space.h"

namespace crev::revoker {

void
RevocationBitmap::setRange(sim::SimThread &t, Addr base, Addr len,
                           bool value)
{
    CREV_ASSERT(base % kGranuleSize == 0);
    CREV_ASSERT(len % kGranuleSize == 0);
    CREV_ASSERT(len > 0);

    Addr g = base >> kGranuleBits;        // first granule index
    const Addr g_end = (base + len) >> kGranuleBits;

    // Host mirror and simulated bytes must update atomically (no
    // yield between them), or a concurrent probe's self-check would
    // observe them out of sync.
    auto mirror = [&](Addr from, Addr to) {
        painted_.setGranules(from, to, value);
    };

    // Partial leading/trailing bytes need an atomic RMW (a real
    // allocator uses an atomic OR/AND: without atomicity, a paint
    // racing a clear of another bit in the same byte could lose one
    // of the updates). Whole bytes in the middle are written in bulk.
    check::RaceChecker *checker = t.scheduler().checker();
    auto rmw_byte = [&](Addr byte_va, std::uint8_t mask, Addr from,
                        Addr to) {
        if (checker != nullptr)
            checker->onShadowRmwBegin(t.id(), t.now(), byte_va);
        std::uint8_t b = 0;
        if (torn_rmw_for_test_) {
            // Deliberately broken variant: no NoYield guard, and the
            // token is handed away between the load and the store —
            // exactly the lost-update window the guard prevents.
            mirror(from, to);
            mmu_.loadData(t, byte_va, &b, 1);
            t.yieldNow();
            b = value ? static_cast<std::uint8_t>(b | mask)
                      : static_cast<std::uint8_t>(b & ~mask);
            mmu_.storeData(t, byte_va, &b, 1);
        } else {
            sim::SimThread::NoYield guard(t);
            mirror(from, to);
            mmu_.loadData(t, byte_va, &b, 1);
            b = value ? static_cast<std::uint8_t>(b | mask)
                      : static_cast<std::uint8_t>(b & ~mask);
            mmu_.storeData(t, byte_va, &b, 1);
        }
        if (checker != nullptr)
            checker->onShadowRmwEnd(t.id(), byte_va);
    };

    while (g < g_end && (g & 7) != 0) {
        std::uint8_t mask = 0;
        const Addr first = g;
        const Addr byte_va = vm::kShadowBase + (g >> 3);
        while (g < g_end && (vm::kShadowBase + (g >> 3)) == byte_va) {
            mask |= static_cast<std::uint8_t>(1u << (g & 7));
            ++g;
        }
        rmw_byte(byte_va, mask, first, g);
    }

    // Bulk middle: whole shadow bytes, stored in cache-line chunks.
    std::uint8_t chunk[64];
    std::fill(std::begin(chunk), std::end(chunk),
              value ? std::uint8_t{0xFF} : std::uint8_t{0});
    while (g_end - g >= 8) {
        const Addr byte_va = vm::kShadowBase + (g >> 3);
        const Addr whole_bytes = (g_end - g) >> 3;
        const std::size_t n = static_cast<std::size_t>(
            std::min<Addr>(whole_bytes, sizeof(chunk)));
        sim::SimThread::NoYield guard(t);
        if (checker != nullptr)
            checker->onShadowWrite(t.id(), t.now(), byte_va,
                                   static_cast<Addr>(n));
        mirror(g, g + static_cast<Addr>(n) * 8);
        mmu_.storeData(t, byte_va, chunk, n);
        g += static_cast<Addr>(n) * 8;
    }

    // Trailing partial byte.
    if (g < g_end) {
        std::uint8_t mask = 0;
        const Addr first = g;
        const Addr byte_va = vm::kShadowBase + (g >> 3);
        while (g < g_end) {
            mask |= static_cast<std::uint8_t>(1u << (g & 7));
            ++g;
        }
        rmw_byte(byte_va, mask, first, g_end);
    }
}

void
RevocationBitmap::paint(sim::SimThread &t, Addr base, Addr len)
{
    if (tracer_ != nullptr)
        tracer_->record(t.id(), t.core(), t.now(),
                        trace::EventType::kPhaseBegin,
                        static_cast<std::uint8_t>(trace::Phase::kPaint),
                        base);
    setRange(t, base, len, true);
    if (tracer_ != nullptr)
        tracer_->record(t.id(), t.core(), t.now(),
                        trace::EventType::kPhaseEnd,
                        static_cast<std::uint8_t>(trace::Phase::kPaint),
                        base);
}

void
RevocationBitmap::clear(sim::SimThread &t, Addr base, Addr len)
{
    setRange(t, base, len, false);
}

bool
RevocationBitmap::probe(sim::SimThread &t, Addr addr)
{
    const Addr g = addr >> kGranuleBits;
    const Addr byte_va = vm::kShadowBase + (g >> 3);
    if (auto *c = t.scheduler().checker())
        c->onShadowProbe(t.id(), t.now(), byte_va);
    std::uint8_t b = 0;
    // Host fast path: when the probing core's TLB already maps the
    // shadow page, loadData() would charge exactly one access — the
    // MMU's fast shadow load issues that identical charge without the
    // translate/segment machinery. Misses (or disabled fast paths)
    // fall back to the full path.
    if (!mmu_.tryKernelShadowLoad(t, byte_va, &b))
        mmu_.loadData(t, byte_va, &b, 1);
    const bool bit = (b >> (g & 7)) & 1;
    // Self-check: the simulated bitmap and host mirror must agree.
    // O(1) against the two-level summary, so it stays cheap enough to
    // keep compiled into the hot path of both sweep configurations.
    CREV_ASSERT(bit == painted_.test(addr));
    return bit;
}

bool
RevocationBitmap::probeQuiet(Addr addr) const
{
    return painted_.test(addr);
}

} // namespace crev::revoker
