/**
 * @file
 * The revocation ("shadow") bitmap — paper §2.2.2.
 *
 * One bit per 16-byte granule of user address space; a set bit means
 * capabilities whose *base* falls in that granule are to be revoked.
 * The bitmap lives in simulated memory (a kernel-provided anonymous
 * object at vm::kShadowBase), so paints by the allocator and probes by
 * the sweep generate real, accounted memory traffic — CHERIvoke
 * identifies paint traffic as a first-order cost.
 *
 * A host-side mirror of the painted set is maintained in parallel;
 * it backs the off-clock Auditor and a self-check that the simulated
 * bits never diverge from the mirror. The mirror is a two-level
 * ShadowSummary, so the self-check and probeQuiet are O(1) word tests
 * rather than hash lookups.
 */

#ifndef CREV_REVOKER_BITMAP_H_
#define CREV_REVOKER_BITMAP_H_

#include <cstdint>

#include "base/types.h"
#include "revoker/shadow_summary.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::revoker {

/** The revocation bitmap, painted by allocators, read by the sweep. */
class RevocationBitmap
{
  public:
    explicit RevocationBitmap(vm::Mmu &mmu) : mmu_(mmu) {}

    /**
     * Set the bits covering [base, base+len). Both ends must be
     * granule-aligned (allocations are).
     */
    void paint(sim::SimThread &t, Addr base, Addr len);

    /** Clear the bits covering [base, base+len) (dequarantine). */
    void clear(sim::SimThread &t, Addr base, Addr len);

    /** Probe the bit for @p addr, charging a (usually cached) load. */
    bool probe(sim::SimThread &t, Addr addr);

    /** Uncharged probe for assertions and the auditor. */
    bool probeQuiet(Addr addr) const;

    /** Host-side two-level mirror of the painted granule set. */
    const ShadowSummary &painted() const { return painted_; }

    /**
     * Mutable mirror access for the Auditor's fault-domain paths
     * only: chaos corruption (ShadowSummary::corruptBit) and the
     * ground-truth rebuild (ShadowSummary::rebuildBlock). Simulation
     * paths keep using paint()/clear().
     */
    ShadowSummary &mutableSummaryForRepair() { return painted_; }

    std::uint64_t paintedGranules() const { return painted_.count(); }

    /** Attach an event tracer (null = off); paints become kPaint
     *  phase brackets on the painting thread. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    /**
     * Test-only: deliberately tear the partial-byte read-modify-write
     * by yielding between the shadow load and store (the lost-update
     * bug the NoYield guard exists to prevent). The race checker's
     * shadow-rmw-race rule must flag the resulting interleavings.
     */
    void setTornRmwForTest(bool torn) { torn_rmw_for_test_ = torn; }

  private:
    void setRange(sim::SimThread &t, Addr base, Addr len, bool value);

    vm::Mmu &mmu_;
    ShadowSummary painted_;
    trace::Tracer *tracer_ = nullptr;
    bool torn_rmw_for_test_ = false;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_BITMAP_H_
