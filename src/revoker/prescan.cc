#include "revoker/prescan.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <thread> // host pre-scan workers; see safety note below

#include "base/logging.h"
#include "sim/lockstep.h"

namespace crev::revoker {

namespace {

/** Snapshot and pre-decode one resident page into @p out. */
void
scanPage(const mem::Frame &f, const ShadowSummary &painted, Addr va,
         PrescanPipeline::PageScan &out)
{
    out.page_va = va;
    out.tags = f.tagWords();
    for (std::size_t k = 0; k < mem::TagWords::kWords; ++k) {
        std::uint64_t w = out.tags.word(k);
        while (w != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(w));
            w &= w - 1;
            const std::size_t g = k * 64 + bit;
            PrescanPipeline::Candidate c;
            c.granule = static_cast<std::uint16_t>(g);
            const std::uint8_t *p =
                f.bytes.data() + g * kGranuleSize;
            std::memcpy(&c.bits.lo, p, 8);
            std::memcpy(&c.bits.hi, p + 8, 8);
            c.cap = cap::decode(c.bits, true);
            c.painted_hint = painted.anyInBlockOf(c.cap.base);
            out.cands.push_back(c);
        }
    }
}

} // namespace

void
PrescanPipeline::build(vm::AddressSpace &as,
                       const ShadowSummary &painted,
                       const std::vector<Addr> &pages,
                       sim::LaneGroup *lanes)
{
    pages_.clear();

    // Resolve PTEs on the calling (simulated) thread: map lookups are
    // cheap, and it keeps the workers away from the page table.
    std::vector<std::pair<Addr, Addr>> work; // (page va, pfn)
    work.reserve(pages.size());
    for (Addr va : pages) {
        const vm::Pte *p = as.findPte(va);
        if (p != nullptr && p->valid)
            work.emplace_back(va, p->pfn);
    }
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());

    pages_.resize(work.size());
    const mem::PhysMem &pm = as.physMem();

    // Striped partitioning: worker w owns entries w, w+W, ... Each
    // slot is written by exactly one worker and the output position is
    // fixed by the sorted work list, so the result is independent of
    // thread count and interleaving — no synchronisation needed.
    //
    // Safety: the calling simulated thread holds the scheduler's
    // execution token for the whole call (build never yields), so no
    // simulated code can mutate frames or the painted summary while
    // the workers read them, and every worker joins before return.
    // lint: threading-ok (read-only fan-out, joined before return)
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t nworkers =
        std::min<std::size_t>({work.size() / 16, hw == 0 ? 1 : hw, 4});
    auto run = [&](std::size_t w, std::size_t stride) {
        for (std::size_t i = w; i < work.size(); i += stride)
            scanPage(pm.frameUncached(work[i].second), painted,
                     work[i].first, pages_[i]);
    };
    if (lanes != nullptr) {
        // Lockstep engine: reuse the persistent lane pool instead of
        // spawning threads per epoch. Stripe partitioning is the same
        // as below, so the output is identical.
        lanes->runStripes(lanes->lanes(), run);
    } else if (nworkers <= 1) {
        run(0, 1);
    } else {
        // lint: threading-ok (host pre-scan fan-out; joined below)
        std::vector<std::thread> workers;
        workers.reserve(nworkers);
        for (std::size_t w = 0; w < nworkers; ++w)
            workers.emplace_back(run, w, nworkers);
        for (auto &t : workers)
            t.join();
    }

    stats_.pages_prescanned += pages_.size();
    for (const PageScan &s : pages_)
        stats_.candidate_caps += s.cands.size();
}

const PrescanPipeline::PageScan *
PrescanPipeline::find(Addr page_va) const
{
    auto it = std::lower_bound(
        pages_.begin(), pages_.end(), page_va,
        [](const PageScan &s, Addr va) { return s.page_va < va; });
    if (it == pages_.end() || it->page_va != page_va)
        return nullptr;
    return &*it;
}

void
PrescanPipeline::clear()
{
    pages_.clear();
}

} // namespace crev::revoker
