#include "revoker/prescan.h"

#include <algorithm>
#include <cstring>
#include <thread> // host pre-scan workers; see safety note below

#include "base/host_budget.h"
#include "base/logging.h"
#include "base/simd.h"
#include "revoker/memo.h"
#include "sim/lockstep.h"

namespace crev::revoker {

namespace {

/** Snapshot and pre-decode one resident page into @p out. */
void
scanPage(const mem::Frame &f, const ShadowSummary &painted, Addr va,
         PrescanPipeline::PageScan &out)
{
    out.page_va = va;
    out.tags = f.tagWords();

    // Batch kernels (base/simd.h): expand the snapshot's set tag bits
    // into candidate granule indices in one masked pass, then gather
    // every candidate's 16 raw capability bytes; only the decode and
    // the painted classification remain per-candidate.
    std::uint32_t idx[kGranulesPerPage];
    const std::size_t n = simd::expandSetBits(
        out.tags.words(), mem::TagWords::kWords, 0, idx);
    std::uint64_t raw[2 * kGranulesPerPage];
    simd::gatherGranules(f.bytes.data(), idx, n, raw);

    out.cands.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        PrescanPipeline::Candidate &c = out.cands[k];
        c.granule = static_cast<std::uint16_t>(idx[k]);
        c.bits.lo = raw[2 * k];
        c.bits.hi = raw[2 * k + 1];
        c.base = cap::decode(c.bits, true).base;
        c.painted_hint = painted.anyInBlockOf(c.base);
    }
}

} // namespace

void
PrescanPipeline::build(vm::AddressSpace &as,
                       const ShadowSummary &painted,
                       const std::vector<Addr> &pages,
                       sim::LaneGroup *lanes, DecodeMemo *memo,
                       std::uint64_t frame_epoch)
{
    pages_.clear();

    // Resolve PTEs on the calling (simulated) thread: map lookups are
    // cheap, and it keeps the workers away from the page table.
    std::vector<std::pair<Addr, Addr>> work; // (page va, pfn)
    work.reserve(pages.size());
    for (Addr va : pages) {
        const vm::Pte *p = as.findPte(va);
        if (p != nullptr && p->valid)
            work.emplace_back(va, p->pfn);
    }
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());

    pages_.resize(work.size());
    const mem::PhysMem &pm = as.physMem();

    // Cross-epoch tier: page-fresh memo entries are served by pointer
    // (no frame reads, no copies); the rest get a memo entry prepared
    // in place and the workers below scan straight into it, reusing
    // the candidate vector's capacity from the last epoch. Without a
    // memo the scans land in own_. The store generations are
    // quiescent here for the same token-holding reason the frames
    // are, so the freshness test and the prepare() stamps observe one
    // consistent instant.
    std::vector<char> reused(work.size(), 0);
    std::vector<PageScan *> slots(work.size(), nullptr);
    if (memo != nullptr) {
        for (std::size_t i = 0; i < work.size(); ++i) {
            const DecodeMemo::Entry *e = memo->find(work[i].first);
            if (e != nullptr &&
                DecodeMemo::fresh(*e, work[i].second,
                                  as.storeGen(work[i].first),
                                  frame_epoch)) {
                pages_[i] = {work[i].first, &e->scan};
                reused[i] = 1;
                ++memo->stats().page_hits;
            }
        }
        for (std::size_t i = 0; i < work.size(); ++i) {
            if (reused[i] != 0)
                continue;
            DecodeMemo::Entry &e = memo->prepare(
                work[i].first, work[i].second,
                as.storeGen(work[i].first), frame_epoch);
            slots[i] = &e.scan;
            pages_[i] = {work[i].first, &e.scan};
        }
    } else {
        own_.resize(work.size());
        for (std::size_t i = 0; i < work.size(); ++i) {
            slots[i] = &own_[i];
            pages_[i] = {work[i].first, &own_[i]};
        }
    }

    // Striped partitioning: worker w owns entries w, w+W, ... Each
    // slot is written by exactly one worker and the output position is
    // fixed by the sorted work list, so the result is independent of
    // thread count and interleaving — no synchronisation needed.
    //
    // Safety: the calling simulated thread holds the scheduler's
    // execution token for the whole call (build never yields), so no
    // simulated code can mutate frames or the painted summary while
    // the workers read them, and every worker joins before return.
    // lint: threading-ok (read-only fan-out, joined before return)
    const std::size_t hw = std::thread::hardware_concurrency();
    const std::size_t want = std::min<std::size_t>(
        {work.size() / 16, hw == 0 ? 1 : hw, 4});
    auto run = [&](std::size_t w, std::size_t stride) {
        for (std::size_t i = w; i < work.size(); i += stride)
            if (reused[i] == 0)
                scanPage(pm.frameUncached(work[i].second), painted,
                         work[i].first, *slots[i]);
    };
    if (lanes != nullptr) {
        // Lockstep engine: reuse the persistent lane pool instead of
        // spawning threads per epoch. Stripe partitioning is the same
        // as below, so the output is identical.
        lanes->runStripes(lanes->lanes(), run);
    } else if (want <= 1) {
        run(0, 1);
    } else {
        // Transient helper threads draw on the process-wide host-core
        // budget (base/host_budget.h) so stripes never oversubscribe
        // the cpuset under a parallel bench run; the caller's own
        // thread is stripe 0 and needs no slot.
        auto &budget = base::HostBudget::instance();
        const unsigned extra = budget.acquireExtra(
            static_cast<unsigned>(want) - 1);
        const std::size_t nworkers = std::size_t{extra} + 1;
        if (nworkers <= 1) {
            run(0, 1);
        } else {
            // lint: threading-ok (host pre-scan fan-out; joined below)
            std::vector<std::thread> workers;
            workers.reserve(nworkers - 1);
            for (std::size_t w = 1; w < nworkers; ++w)
                workers.emplace_back(run, w, nworkers);
            run(0, nworkers);
            for (auto &t : workers)
                t.join();
        }
        budget.releaseExtra(extra);
    }

    stats_.pages_prescanned += pages_.size();
    for (std::size_t i = 0; i < pages_.size(); ++i)
        stats_.candidate_caps += pages_[i].second->cands.size();
}

const PrescanPipeline::PageScan *
PrescanPipeline::find(Addr page_va) const
{
    auto it = std::lower_bound(
        pages_.begin(), pages_.end(), page_va,
        [](const std::pair<Addr, const PageScan *> &s, Addr va) {
            return s.first < va;
        });
    if (it == pages_.end() || it->first != page_va)
        return nullptr;
    return it->second;
}

void
PrescanPipeline::clear()
{
    // own_ keeps its storage: the next build without a memo reuses
    // the PageScan (and candidate-vector) capacity instead of
    // reallocating per epoch.
    pages_.clear();
}

} // namespace crev::revoker
