#include "revoker/cheriot_filter.h"

#include <vector>

#include "vm/address_space.h"

namespace crev::revoker {

CheriotFilterRevoker::CheriotFilterRevoker(sim::Scheduler &sched,
                                           vm::Mmu &mmu,
                                           kern::Kernel &kernel,
                                           RevocationBitmap &bitmap,
                                           const RevokerOptions &opts)
    : Revoker(sched, mmu, kernel, bitmap, opts)
{
}

bool
CheriotFilterRevoker::filterLoad(sim::SimThread &t,
                                 const cap::Capability &c)
{
    ++probes_;
    const bool revoked = sweep_.isRevoked(t, c);
    if (revoked)
        ++stripped_;
    // Not self-healing (paper footnote 28): the in-memory copy keeps
    // its tag until the background sweep visits it; only the value
    // entering the register file is stripped.
    return revoked;
}

void
CheriotFilterRevoker::doEpoch(sim::SimThread &self)
{
    kern::EpochCounter &epoch = kernel_.epoch();
    vm::AddressSpace &as = mmu_.addressSpace();

    epoch.advance(self); // odd
    snapshotAuditSet();

    EpochTiming timing;

    // Registers and hoards may hold pre-epoch capabilities that never
    // pass through a load again; scan them world-stopped. No
    // generation machinery exists to flip.
    const Cycles begin = stwBegin(self);
    tracePhaseBegin(self, trace::Phase::kStwScan);
    scanRegistersAndHoards(self);
    timing.stw_duration = self.now() - begin;
    tracePhaseEnd(self, trace::Phase::kStwScan);
    sched_.resumeWorld(self);

    // One background pass over every page that has ever held
    // capabilities. Stores during the sweep are filtered-clean values,
    // so no page needs a second visit (the same argument that lets
    // Reloaded skip re-sweeps, provided here by the load filter).
    const Cycles cbegin = self.now();
    tracePhaseBegin(self, trace::Phase::kConcurrentSweep);
    const std::vector<Addr> pages =
        collectPages(as.capEverPages(),
                     [](const vm::Pte &p) { return p.cap_ever; });
    prescanPages(pages);
    sim::SimMutex &pmap = as.pmapLock();
    for (Addr va : pages) {
        pmap.lock(self);
        vm::Pte *p = as.findPte(va);
        const bool valid = p != nullptr && p->valid;
        pmap.unlock(self);
        if (!valid)
            continue;
        const bool clean = sweep_.sweepPage(self, va);
        pmap.lock(self);
        if (p->valid) {
            PublishOptions o;
            o.clean = clean;
            o.clean_page_detection = opts_.clean_page_detection;
            o.set_generation = false;
            o.charge_and_shootdown = false;
            sweep_.publishPage(self, *p, va, o,
                               vm::PteContext::kLocked);
        }
        pmap.unlock(self);
    }
    prescanDone();
    tracePhaseEnd(self, trace::Phase::kConcurrentSweep);
    timing.concurrent_duration = self.now() - cbegin;

    finishEpoch(self); // even
    timings_.push_back(timing);
}

} // namespace crev::revoker
