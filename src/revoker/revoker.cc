#include "revoker/revoker.h"

#include "base/logging.h"

namespace crev::revoker {

Revoker::Revoker(sim::Scheduler &sched, vm::Mmu &mmu,
                 kern::Kernel &kernel, RevocationBitmap &bitmap,
                 const RevokerOptions &opts)
    : sched_(sched), mmu_(mmu), kernel_(kernel), bitmap_(bitmap),
      opts_(opts), sweep_(mmu, bitmap)
{
}

void
Revoker::requestEpoch(sim::SimThread &caller)
{
    if (request_pending_)
        return;
    request_pending_ = true;
    request_event_.notifyAll(caller);
}

void
Revoker::waitForEpochCounter(sim::SimThread &caller,
                             std::uint64_t target)
{
    while (kernel_.epoch().value() < target) {
        if (caller.scheduler().shuttingDown())
            return;
        epoch_event_.wait(caller);
    }
}

void
Revoker::scanRegistersAndHoards(sim::SimThread &self)
{
    // Paper §4.4: the kernel must scan all pointers it holds on behalf
    // of the program — saved register files of every thread plus
    // explicit hoards — and may divulge none unchecked.
    for (const auto &tp : sched_.threads())
        sweep_.scanRegisters(self, tp->registerFile());
    sweep_.scanRegisters(self, kernel_.hoard().slots());
}

void
Revoker::snapshotAuditSet()
{
    audit_set_ = bitmap_.painted();
}

void
Revoker::onDequarantine(Addr base, Addr len)
{
    for (Addr g = roundDown(base, kGranuleSize); g < base + len;
         g += kGranuleSize)
        audit_set_.erase(g);
}

void
Revoker::daemonBody(sim::SimThread &self)
{
    for (;;) {
        while (!request_pending_) {
            if (sched_.shuttingDown())
                return;
            request_event_.wait(self);
        }
        request_pending_ = false;

        const SweepStats before = sweep_.stats();
        doEpoch(self);
        const SweepStats &after = sweep_.stats();
        ++epochs_;
        if (!timings_.empty()) {
            timings_.back().pages_swept =
                after.pages_swept - before.pages_swept;
            timings_.back().caps_revoked =
                after.caps_revoked - before.caps_revoked;
        }

        // §6.2: release mapping-quarantined reservations whose epoch
        // target has now passed.
        kernel_.reapQuarantinedMappings(self);

        // Wake allocators waiting on the epoch counter.
        epoch_event_.notifyAll(self);

        if (opts_.audit && audit_hook_)
            audit_hook_();
    }
}

} // namespace crev::revoker
