#include "revoker/revoker.h"

#include "base/logging.h"
#include "check/race_checker.h"
#include "check/safety_oracle.h"
#include "sim/fault_injector.h"
#include "vm/address_space.h"

namespace crev::revoker {

Revoker::Revoker(sim::Scheduler &sched, vm::Mmu &mmu,
                 kern::Kernel &kernel, RevocationBitmap &bitmap,
                 const RevokerOptions &opts)
    : sched_(sched), mmu_(mmu), kernel_(kernel), bitmap_(bitmap),
      opts_(opts), sweep_(mmu, bitmap, opts.host_fast_paths)
{
    if (opts_.memo && opts_.host_fast_paths)
        sweep_.setMemo(&memo_);
}

void
Revoker::requestEpoch(sim::SimThread &caller)
{
    if (request_pending_)
        return;
    request_pending_ = true;
    request_event_.notifyAll(caller);
}

void
Revoker::waitForEpochCounter(sim::SimThread &caller,
                             std::uint64_t target)
{
    while (kernel_.epoch().value() < target) {
        if (caller.scheduler().shuttingDown())
            return;
        epoch_event_.wait(caller);
    }
}

void
Revoker::tracePhaseBegin(sim::SimThread &self, trace::Phase phase)
{
    if (opts_.tracer != nullptr)
        opts_.tracer->record(self.id(), self.core(), self.now(),
                             trace::EventType::kPhaseBegin,
                             static_cast<std::uint8_t>(phase));
}

void
Revoker::tracePhaseEnd(sim::SimThread &self, trace::Phase phase)
{
    if (opts_.tracer != nullptr)
        opts_.tracer->record(self.id(), self.core(), self.now(),
                             trace::EventType::kPhaseEnd,
                             static_cast<std::uint8_t>(phase));
}

void
Revoker::scanRegistersAndHoards(sim::SimThread &self)
{
    // Paper §4.4: the kernel must scan all pointers it holds on behalf
    // of the program — saved register files of every thread plus
    // explicit hoards — and may divulge none unchecked.
    if (auto *c = sched_.checker())
        c->onStwScan(self.id(), self.now());
    for (const auto &tp : sched_.threads())
        sweep_.scanRegisters(self, tp->registerFile());
    sweep_.scanRegisters(self, kernel_.hoard().slots());
}

void
Revoker::snapshotAuditSet()
{
    audit_set_ = bitmap_.painted();
}

void
Revoker::onDequarantine(Addr base, Addr len)
{
    audit_set_.clearRange(base, len);
    if (oracle_ != nullptr)
        oracle_->clearRange(base, len);
}

void
Revoker::commitOracle(sim::SimThread &self)
{
    if (oracle_ == nullptr)
        return;
    (void)self;
    oracle_->commitEpoch(kernel_.epoch().value());
    audit_set_.forEachSet(
        [this](Addr g) { oracle_->commitGranule(g); });
}

std::vector<Addr>
Revoker::collectPages(const std::set<Addr> &index,
                      const std::function<bool(const vm::Pte &)> &want)
{
    std::vector<Addr> pages;
    vm::AddressSpace &as = mmu_.addressSpace();
    if (sweepAccel()) {
        // The index is a superset of the pages whose live PTE passes
        // the predicate, so filtering it reproduces the full walk's
        // list exactly (both ascend in VA).
        for (Addr va : index) {
            const vm::Pte *p = as.findPte(va);
            if (p != nullptr && p->valid && want(*p))
                pages.push_back(va);
        }
    } else {
        as.forEachResidentPage([&](Addr va, vm::Pte &p) {
            if (want(p))
                pages.push_back(va);
        });
    }
    return pages;
}

void
Revoker::prescanPages(const std::vector<Addr> &pages)
{
    if (!sweepAccel() || pages.empty())
        return;
    sim::LaneGroup *lanes = nullptr;
    if (sched_.lockstep()) {
        if (sched_.laneCount() < 2) {
            // Single-lane lockstep: there is no spare host lane to
            // overlap the speculative snapshot with, so it would only
            // serialize in front of the sweep. Skip it — the sweep
            // decodes live, and RunMetrics are identical with the
            // pipeline on or off (its design invariant).
            return;
        }
        lanes = sched_.lanes();
    }
    prescan_.build(mmu_.addressSpace(), bitmap_.painted(), pages,
                   lanes, sweep_.memo(), mmu_.frameEpoch());
    sweep_.setPrescan(&prescan_);
}

void
Revoker::prescanDone()
{
    sweep_.setPrescan(nullptr);
    prescan_.clear();
}

void
Revoker::nudge(sim::SimThread &caller)
{
    request_event_.notifyAll(caller);
    epoch_event_.notifyAll(caller);
}

void
Revoker::requestRecovery(sim::SimThread &caller)
{
    if (!epoch_in_progress_ || recovery_requested_)
        return;
    recovery_requested_ = true;
    nudge(caller);
}

void
Revoker::registerSweeper(sim::SimThread *t)
{
    sweepers_.push_back(t);
}

std::vector<sim::SimThread *>
Revoker::reapDeadSweepers(sim::SimThread &)
{
    std::vector<sim::SimThread *> dead;
    for (auto it = sweepers_.begin(); it != sweepers_.end();) {
        if (sched_.finished(**it)) {
            dead.push_back(*it);
            it = sweepers_.erase(it);
        } else {
            ++it;
        }
    }
    return dead;
}

Cycles
Revoker::stwBegin(sim::SimThread &self)
{
    if (opts_.injector != nullptr) {
        // A lost-then-retried IPI: the initiating thread burns cycles
        // before the world actually stops.
        const Cycles delay = opts_.injector->stwEntryDelay(self);
        if (delay > 0)
            self.accrue(delay);
    }
    return sched_.stopTheWorld(self);
}

void
Revoker::finishEpoch(sim::SimThread &self)
{
    if (force_completed_)
        return; // the watchdog already advanced the counter for us
    kernel_.epoch().advance(self);
    commitOracle(self);
}

Cycles
Revoker::emergencyStwSweep(sim::SimThread &self)
{
    const Cycles begin = sched_.stopTheWorld(self);
    scanRegistersAndHoards(self);

    // Sweep by fiat: with the world stopped no mutator can load a
    // stale capability, so visiting every page that ever held tags
    // revokes everything painted — regardless of what state the
    // wedged concurrent epoch left behind. Also heal every PTE so the
    // machine leaves the epoch with a consistent generation and no
    // pending traps.
    vm::AddressSpace &as = mmu_.addressSpace();
    const unsigned gen = mmu_.currentGen();
    as.forEachResidentPage([&](Addr va, vm::Pte &p) {
        if (!p.valid)
            return;
        if (p.cap_ever)
            sweep_.sweepPage(self, va);
        if (p.clg != gen || p.cap_load_trap) {
            PublishOptions o;
            o.gen = gen;
            sweep_.publishPage(self, p, va, o, vm::PteContext::kStw);
        }
    });

    const Cycles duration = self.now() - begin;
    sched_.resumeWorld(self);
    return duration;
}

void
Revoker::forceCompleteEpoch(sim::SimThread &self)
{
    CREV_ASSERT(epoch_in_progress_);
    CREV_ASSERT(kernel_.epoch().value() % 2 == 1);

    emergencyStwSweep(self);
    force_completed_ = true;
    cur_recovery_.degraded = true;
    cur_recovery_.forced = true;

    // Complete the epoch on the daemon's behalf: counter to even,
    // quarantined mappings reaped, waiters released. When the daemon
    // eventually resumes, finishEpoch() skips its own advance.
    kernel_.epoch().advance(self);
    commitOracle(self);
    kernel_.reapQuarantinedMappings(self);
    epoch_event_.notifyAll(self);
    if (opts_.audit && audit_hook_)
        audit_hook_(self);
}

void
Revoker::emergencyEpoch(sim::SimThread &self)
{
    kern::EpochCounter &epoch = kernel_.epoch();
    CREV_ASSERT(epoch.value() % 2 == 0);
    request_pending_ = false;

    const SweepStats before = sweep_.stats();
    epoch.advance(self); // odd: epoch in progress
    snapshotAuditSet();

    EpochTiming timing;
    timing.stw_duration = emergencyStwSweep(self);
    timing.recovery.degraded = true;
    timing.recovery.forced = true;

    epoch.advance(self); // even: epoch complete
    commitOracle(self);
    const SweepStats &after = sweep_.stats();
    timing.pages_swept = after.pages_swept - before.pages_swept;
    timing.caps_revoked = after.caps_revoked - before.caps_revoked;
    timings_.push_back(timing);
    ++epochs_;

    kernel_.reapQuarantinedMappings(self);
    epoch_event_.notifyAll(self);
    if (opts_.audit && audit_hook_)
        audit_hook_(self);
}

void
Revoker::daemonBody(sim::SimThread &self)
{
    for (;;) {
        while (!request_pending_) {
            if (sched_.shuttingDown())
                return;
            request_event_.wait(self);
        }
        request_pending_ = false;

        epoch_in_progress_ = true;
        ++epoch_seq_;
        epoch_started_at_ = self.now();
        recovery_requested_ = false;
        force_completed_ = false;
        cur_recovery_ = EpochRecovery{};

        const SweepStats before = sweep_.stats();
        doEpoch(self);
        epoch_in_progress_ = false;
        const SweepStats &after = sweep_.stats();
        ++epochs_;
        if (!timings_.empty()) {
            timings_.back().pages_swept =
                after.pages_swept - before.pages_swept;
            timings_.back().caps_revoked =
                after.caps_revoked - before.caps_revoked;
            timings_.back().recovery = cur_recovery_;
        }

        // §6.2: release mapping-quarantined reservations whose epoch
        // target has now passed.
        kernel_.reapQuarantinedMappings(self);

        // Wake allocators waiting on the epoch counter.
        epoch_event_.notifyAll(self);

        if (opts_.audit && audit_hook_)
            audit_hook_(self);
    }
}

} // namespace crev::revoker
