/**
 * @file
 * A CHERIoT-style load *filter* (paper §6.3), adapted to this
 * MMU-based machine as a point of comparison.
 *
 * CHERIoT's capability-load instruction probes the revocation bitmap
 * directly and clears the tag of a revoked capability on its way into
 * the register file — no traps, no software intervention, and no
 * UAF/UAR gap visible to clients. CHERIoT affords this because its
 * bitmap lives in tightly-coupled memory; here the probe goes through
 * the ordinary cache hierarchy, so the filter taxes *every* tagged
 * capability load a (usually cached) bitmap access instead of taxing
 * revocation-epoch pages with faults.
 *
 * Epochs still exist (memory must eventually be swept so quarantine
 * can drain and bitmap bits can be recycled), but the filter removes
 * the need for any load-generation machinery: the background sweep is
 * the whole epoch, there is no per-page trap state, and the STW phase
 * only scans registers and hoards.
 */

#ifndef CREV_REVOKER_CHERIOT_FILTER_H_
#define CREV_REVOKER_CHERIOT_FILTER_H_

#include "revoker/revoker.h"

namespace crev::revoker {

/** Inline-filtering revoker: loads self-filter, background sweeps. */
class CheriotFilterRevoker : public Revoker
{
  public:
    CheriotFilterRevoker(sim::Scheduler &sched, vm::Mmu &mmu,
                         kern::Kernel &kernel,
                         RevocationBitmap &bitmap,
                         const RevokerOptions &opts);

    const char *name() const override { return "cheriot-filter"; }

    /**
     * The load filter, installed as the Mmu's capability-load hook:
     * probes the bitmap for the loaded capability's base and reports
     * whether the tag must be stripped. Charged to the loading
     * thread.
     */
    bool filterLoad(sim::SimThread &t, const cap::Capability &c);

    /** Loads filtered (probes made) and tags stripped. */
    std::uint64_t probes() const { return probes_; }
    std::uint64_t stripped() const { return stripped_; }

  protected:
    void doEpoch(sim::SimThread &self) override;

  private:
    std::uint64_t probes_ = 0;
    std::uint64_t stripped_ = 0;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_CHERIOT_FILTER_H_
