/**
 * @file
 * Two-level host mirror of the painted granule set.
 *
 * The flat host mirror of the revocation bitmap used to be a hash set
 * of granule base addresses, making the probe self-check and every
 * probeQuiet a hash lookup on the sweep's hottest path. This class
 * replaces it with the hierarchy PoisonCap argues for: a dense level-0
 * bitmap (one bit per 16-byte heap granule, in lazily allocated
 * 4096-granule blocks) under a level-1 "any bit set in this block"
 * bitmap. Membership tests are two word probes; clean-region skipping
 * is one.
 *
 * The structure is pure host state — updates happen at exactly the
 * points the old mirror updated (inside the same NoYield windows), so
 * the simulated shadow bytes and this mirror still move atomically
 * with respect to the scheduler. The Auditor cross-checks the level-1
 * words and running count against the level-0 ground truth.
 */

#ifndef CREV_REVOKER_SHADOW_SUMMARY_H_
#define CREV_REVOKER_SHADOW_SUMMARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/types.h"
#include "vm/address_space.h"

namespace crev::revoker {

/** Two-level bitmap over the heap's granules (host-side only). */
class ShadowSummary
{
  public:
    /** First heap granule index (absolute address >> kGranuleBits). */
    static constexpr Addr kGranuleFloor = vm::kHeapBase >> kGranuleBits;
    /** Number of granules the heap can hold. */
    static constexpr Addr kGranuleCount =
        (vm::kHeapCeiling - vm::kHeapBase) >> kGranuleBits;
    /** Level-0 words per lazily-allocated block (512 bytes each). */
    static constexpr std::size_t kWordsPerBlock = 64;
    static constexpr std::size_t kGranulesPerBlock = kWordsPerBlock * 64;
    static constexpr std::size_t kBlocks =
        kGranuleCount / kGranulesPerBlock;

    ShadowSummary();

    /**
     * Whether the granule containing @p addr is painted. Addresses
     * outside the heap (probes carry arbitrary capability bases) are
     * never painted and test false via the level-1 word alone.
     */
    bool test(Addr addr) const
    {
        const Addr g = addr >> kGranuleBits;
        if (g < kGranuleFloor || g - kGranuleFloor >= kGranuleCount)
            return false;
        const Addr i = g - kGranuleFloor;
        const std::size_t b =
            static_cast<std::size_t>(i / kGranulesPerBlock);
        if (((l1_[b >> 6] >> (b & 63)) & 1) == 0)
            return false;
        const std::vector<std::uint64_t> &blk = blocks_[b];
        return ((blk[(i / 64) % kWordsPerBlock] >> (i & 63)) & 1) != 0;
    }

    /**
     * Whether *any* granule in the 64 KiB block containing @p addr is
     * painted — the O(1) clean-region test (level-1 word only).
     */
    bool anyInBlockOf(Addr addr) const
    {
        const Addr g = addr >> kGranuleBits;
        if (g < kGranuleFloor || g - kGranuleFloor >= kGranuleCount)
            return false;
        const std::size_t b = static_cast<std::size_t>(
            (g - kGranuleFloor) / kGranulesPerBlock);
        return ((l1_[b >> 6] >> (b & 63)) & 1) != 0;
    }

    /**
     * Set or clear the bits for granule *indices* [g_from, g_to) —
     * the index space the bitmap's byte RMW already works in. Must lie
     * within the heap.
     */
    void setGranules(Addr g_from, Addr g_to, bool value);

    /**
     * Clear every granule overlapping [base, base+len) (dequarantine;
     * ends need not be aligned).
     */
    void clearRange(Addr base, Addr len);

    /** Total painted granules (maintained incrementally). */
    std::uint64_t count() const { return count_; }

    /**
     * Structural self-check: recompute every block's population and
     * level-1 bit from the level-0 words and compare against the
     * maintained summaries. Returns one string per violation.
     */
    std::vector<std::string> checkConsistent() const;

    /**
     * Visit every set granule's absolute index, ascending (host-side;
     * the safety oracle snapshots revoked generations with this).
     */
    void forEachSet(const std::function<void(Addr)> &fn) const;

    // --- fault-domain support (PR 6) ---

    /**
     * Chaos injection: flip one level-0 bit in an allocated block,
     * deliberately leaving the maintained population/level-1/total
     * summaries stale — pure damage for checkConsistent() to detect
     * and the repair path to heal. @p entropy picks the site
     * deterministically. Returns false (no damage) when no block has
     * ever been allocated; otherwise the flipped granule's absolute
     * index is written to @p granule_out.
     */
    bool corruptBit(std::uint64_t entropy, Addr *granule_out);

    /**
     * Block indices whose maintained summaries disagree with their
     * level-0 words (empty on a consistent structure).
     */
    std::vector<std::size_t> inconsistentBlocks() const;

    /**
     * Rebuild block @p b's level-0 words from ground truth — @p
     * painted maps an absolute granule index to its true bit (the
     * simulated shadow bytes) — and restore the maintained
     * population, level-1 bit, and running total.
     */
    void rebuildBlock(std::size_t b,
                      const std::function<bool(Addr)> &painted);

  private:
    /** Level-1: bit b set iff block b has any level-0 bit set. */
    std::vector<std::uint64_t> l1_;
    /** Per-block set-bit population (drives level-1 clearing). */
    std::vector<std::uint32_t> block_counts_;
    /** Level-0 blocks; empty vector = never allocated (all clear). */
    std::vector<std::vector<std::uint64_t>> blocks_;
    std::uint64_t count_ = 0;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_SHADOW_SUMMARY_H_
