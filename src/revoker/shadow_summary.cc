#include "revoker/shadow_summary.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "base/logging.h"

namespace crev::revoker {

ShadowSummary::ShadowSummary()
    : l1_(kBlocks / 64, 0), block_counts_(kBlocks, 0), blocks_(kBlocks)
{
}

void
ShadowSummary::setGranules(Addr g_from, Addr g_to, bool value)
{
    CREV_ASSERT(g_from <= g_to);
    CREV_ASSERT(g_from >= kGranuleFloor);
    CREV_ASSERT(g_to <= kGranuleFloor + kGranuleCount);

    Addr i = g_from - kGranuleFloor;
    const Addr end = g_to - kGranuleFloor;
    while (i < end) {
        const std::size_t b =
            static_cast<std::size_t>(i / kGranulesPerBlock);
        std::vector<std::uint64_t> &blk = blocks_[b];
        if (blk.empty()) {
            if (!value) {
                // Clearing an untouched block: nothing to do.
                i = std::min<Addr>(
                    end, static_cast<Addr>(b + 1) * kGranulesPerBlock);
                continue;
            }
            blk.assign(kWordsPerBlock, 0);
        }
        const Addr word_base = i & ~Addr{63};
        const Addr word_end = std::min<Addr>(end, word_base + 64);
        std::uint64_t mask = ~std::uint64_t{0}
                             << static_cast<unsigned>(i - word_base);
        if (word_end - word_base < 64)
            mask &= (std::uint64_t{1}
                     << static_cast<unsigned>(word_end - word_base)) -
                    1;
        std::uint64_t &w = blk[(i / 64) % kWordsPerBlock];
        const std::uint64_t old = w;
        w = value ? (old | mask) : (old & ~mask);
        if (w != old) {
            const int delta = std::popcount(w) - std::popcount(old);
            count_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(count_) + delta);
            block_counts_[b] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(block_counts_[b]) + delta);
            if (block_counts_[b] != 0)
                l1_[b >> 6] |= std::uint64_t{1} << (b & 63);
            else
                l1_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
        }
        i = word_end;
    }
}

void
ShadowSummary::clearRange(Addr base, Addr len)
{
    if (len == 0)
        return;
    setGranules(base >> kGranuleBits,
                (base + len + kGranuleSize - 1) >> kGranuleBits, false);
}

std::vector<std::string>
ShadowSummary::checkConsistent() const
{
    std::vector<std::string> out;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
        std::uint64_t cnt = 0;
        for (std::uint64_t w : blocks_[b])
            cnt += static_cast<std::uint64_t>(std::popcount(w));
        total += cnt;
        if (cnt != block_counts_[b]) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "block %zu population %llu != maintained %u",
                          b, static_cast<unsigned long long>(cnt),
                          block_counts_[b]);
            out.push_back(buf);
        }
        const bool l1 = ((l1_[b >> 6] >> (b & 63)) & 1) != 0;
        if (l1 != (cnt != 0)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "block %zu level-1 bit %d but population %llu",
                          b, l1 ? 1 : 0,
                          static_cast<unsigned long long>(cnt));
            out.push_back(buf);
        }
    }
    if (total != count_) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "total population %llu != maintained count %llu",
                      static_cast<unsigned long long>(total),
                      static_cast<unsigned long long>(count_));
        out.push_back(buf);
    }
    return out;
}

void
ShadowSummary::forEachSet(const std::function<void(Addr)> &fn) const
{
    for (std::size_t b = 0; b < kBlocks; ++b) {
        if (((l1_[b >> 6] >> (b & 63)) & 1) == 0)
            continue;
        const std::vector<std::uint64_t> &blk = blocks_[b];
        if (blk.empty())
            continue;
        for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
            std::uint64_t word = blk[w];
            while (word != 0) {
                const unsigned bit = static_cast<unsigned>(
                    std::countr_zero(word));
                word &= word - 1;
                fn(kGranuleFloor +
                   static_cast<Addr>(b) * kGranulesPerBlock +
                   static_cast<Addr>(w) * 64 + bit);
            }
        }
    }
}

bool
ShadowSummary::corruptBit(std::uint64_t entropy, Addr *granule_out)
{
    std::vector<std::size_t> allocated;
    for (std::size_t b = 0; b < kBlocks; ++b)
        if (!blocks_[b].empty())
            allocated.push_back(b);
    if (allocated.empty())
        return false;
    const std::size_t b = allocated[entropy % allocated.size()];
    const std::size_t w =
        static_cast<std::size_t>(entropy >> 20) % kWordsPerBlock;
    const unsigned bit = static_cast<unsigned>(entropy >> 40) % 64;
    blocks_[b][w] ^= std::uint64_t{1} << bit;
    *granule_out = kGranuleFloor +
                   static_cast<Addr>(b) * kGranulesPerBlock +
                   static_cast<Addr>(w) * 64 + bit;
    return true;
}

std::vector<std::size_t>
ShadowSummary::inconsistentBlocks() const
{
    std::vector<std::size_t> out;
    for (std::size_t b = 0; b < kBlocks; ++b) {
        std::uint64_t cnt = 0;
        for (std::uint64_t w : blocks_[b])
            cnt += static_cast<std::uint64_t>(std::popcount(w));
        const bool l1 = ((l1_[b >> 6] >> (b & 63)) & 1) != 0;
        if (cnt != block_counts_[b] || l1 != (cnt != 0))
            out.push_back(b);
    }
    return out;
}

void
ShadowSummary::rebuildBlock(std::size_t b,
                            const std::function<bool(Addr)> &painted)
{
    CREV_ASSERT(b < kBlocks);
    std::vector<std::uint64_t> &blk = blocks_[b];
    if (blk.empty())
        blk.assign(kWordsPerBlock, 0);
    const Addr base = kGranuleFloor +
                      static_cast<Addr>(b) * kGranulesPerBlock;
    std::uint64_t pop = 0;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        std::uint64_t word = 0;
        for (unsigned bit = 0; bit < 64; ++bit) {
            if (painted(base + static_cast<Addr>(w) * 64 + bit))
                word |= std::uint64_t{1} << bit;
        }
        blk[w] = word;
        pop += static_cast<std::uint64_t>(std::popcount(word));
    }
    count_ = count_ - block_counts_[b] + pop;
    block_counts_[b] = static_cast<std::uint32_t>(pop);
    if (pop != 0)
        l1_[b >> 6] |= std::uint64_t{1} << (b & 63);
    else
        l1_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

} // namespace crev::revoker
