#include "revoker/shadow_summary.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "base/logging.h"
#include "base/simd.h"

namespace crev::revoker {

ShadowSummary::ShadowSummary()
    : l1_(kBlocks / 64, 0), block_counts_(kBlocks, 0), blocks_(kBlocks)
{
}

void
ShadowSummary::setGranules(Addr g_from, Addr g_to, bool value)
{
    CREV_ASSERT(g_from <= g_to);
    CREV_ASSERT(g_from >= kGranuleFloor);
    CREV_ASSERT(g_to <= kGranuleFloor + kGranuleCount);

    Addr i = g_from - kGranuleFloor;
    const Addr end = g_to - kGranuleFloor;
    while (i < end) {
        const std::size_t b =
            static_cast<std::size_t>(i / kGranulesPerBlock);
        const Addr block_end = std::min<Addr>(
            end, static_cast<Addr>(b + 1) * kGranulesPerBlock);
        std::vector<std::uint64_t> &blk = blocks_[b];
        if (blk.empty()) {
            if (!value) {
                // Clearing an untouched block: nothing to do.
                i = block_end;
                continue;
            }
            blk.assign(kWordsPerBlock, 0);
        }

        // Per-block population delta: the partial edge words keep the
        // masked RMW, the interior full words go through the batch
        // popcount/fill kernels (base/simd.h) — the span-paint fast
        // path for large quarantine paints and clears.
        std::int64_t delta = 0;
        auto rmw = [&](Addr from, Addr to) {
            const Addr word_base = from & ~Addr{63};
            std::uint64_t mask =
                ~std::uint64_t{0}
                << static_cast<unsigned>(from - word_base);
            if (to - word_base < 64)
                mask &=
                    (std::uint64_t{1}
                     << static_cast<unsigned>(to - word_base)) -
                    1;
            std::uint64_t &w = blk[(from / 64) % kWordsPerBlock];
            const std::uint64_t old = w;
            w = value ? (old | mask) : (old & ~mask);
            delta += std::popcount(w) - std::popcount(old);
        };

        if ((i & 63) != 0) {
            const Addr word_end =
                std::min<Addr>(block_end, (i & ~Addr{63}) + 64);
            rmw(i, word_end);
            i = word_end;
        }
        const std::size_t nfull =
            static_cast<std::size_t>((block_end - i) / 64);
        if (nfull != 0) {
            std::uint64_t *w0 = &blk[(i / 64) % kWordsPerBlock];
            const std::uint64_t pop = simd::popcountWords(w0, nfull);
            delta += value ? static_cast<std::int64_t>(64 * nfull) -
                                 static_cast<std::int64_t>(pop)
                           : -static_cast<std::int64_t>(pop);
            simd::fillWords(w0, nfull,
                            value ? ~std::uint64_t{0} : 0);
            i += static_cast<Addr>(nfull) * 64;
        }
        if (i < block_end) {
            rmw(i, block_end);
            i = block_end;
        }

        if (delta != 0) {
            count_ = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(count_) + delta);
            block_counts_[b] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(block_counts_[b]) + delta);
        }
        if (block_counts_[b] != 0)
            l1_[b >> 6] |= std::uint64_t{1} << (b & 63);
        else
            l1_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
}

void
ShadowSummary::clearRange(Addr base, Addr len)
{
    if (len == 0)
        return;
    setGranules(base >> kGranuleBits,
                (base + len + kGranuleSize - 1) >> kGranuleBits, false);
}

std::vector<std::string>
ShadowSummary::checkConsistent() const
{
    std::vector<std::string> out;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
        const std::uint64_t cnt = simd::popcountWords(
            blocks_[b].data(), blocks_[b].size());
        total += cnt;
        if (cnt != block_counts_[b]) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "block %zu population %llu != maintained %u",
                          b, static_cast<unsigned long long>(cnt),
                          block_counts_[b]);
            out.push_back(buf);
        }
        const bool l1 = ((l1_[b >> 6] >> (b & 63)) & 1) != 0;
        if (l1 != (cnt != 0)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "block %zu level-1 bit %d but population %llu",
                          b, l1 ? 1 : 0,
                          static_cast<unsigned long long>(cnt));
            out.push_back(buf);
        }
    }
    if (total != count_) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "total population %llu != maintained count %llu",
                      static_cast<unsigned long long>(total),
                      static_cast<unsigned long long>(count_));
        out.push_back(buf);
    }
    return out;
}

void
ShadowSummary::forEachSet(const std::function<void(Addr)> &fn) const
{
    for (std::size_t b = 0; b < kBlocks; ++b) {
        if (((l1_[b >> 6] >> (b & 63)) & 1) == 0)
            continue;
        const std::vector<std::uint64_t> &blk = blocks_[b];
        if (blk.empty())
            continue;
        for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
            std::uint64_t word = blk[w];
            while (word != 0) {
                const unsigned bit = static_cast<unsigned>(
                    std::countr_zero(word));
                word &= word - 1;
                fn(kGranuleFloor +
                   static_cast<Addr>(b) * kGranulesPerBlock +
                   static_cast<Addr>(w) * 64 + bit);
            }
        }
    }
}

bool
ShadowSummary::corruptBit(std::uint64_t entropy, Addr *granule_out)
{
    std::vector<std::size_t> allocated;
    for (std::size_t b = 0; b < kBlocks; ++b)
        if (!blocks_[b].empty())
            allocated.push_back(b);
    if (allocated.empty())
        return false;
    const std::size_t b = allocated[entropy % allocated.size()];
    const std::size_t w =
        static_cast<std::size_t>(entropy >> 20) % kWordsPerBlock;
    const unsigned bit = static_cast<unsigned>(entropy >> 40) % 64;
    blocks_[b][w] ^= std::uint64_t{1} << bit;
    *granule_out = kGranuleFloor +
                   static_cast<Addr>(b) * kGranulesPerBlock +
                   static_cast<Addr>(w) * 64 + bit;
    return true;
}

std::vector<std::size_t>
ShadowSummary::inconsistentBlocks() const
{
    std::vector<std::size_t> out;
    for (std::size_t b = 0; b < kBlocks; ++b) {
        const std::uint64_t cnt = simd::popcountWords(
            blocks_[b].data(), blocks_[b].size());
        const bool l1 = ((l1_[b >> 6] >> (b & 63)) & 1) != 0;
        if (cnt != block_counts_[b] || l1 != (cnt != 0))
            out.push_back(b);
    }
    return out;
}

void
ShadowSummary::rebuildBlock(std::size_t b,
                            const std::function<bool(Addr)> &painted)
{
    CREV_ASSERT(b < kBlocks);
    std::vector<std::uint64_t> &blk = blocks_[b];
    if (blk.empty())
        blk.assign(kWordsPerBlock, 0);
    const Addr base = kGranuleFloor +
                      static_cast<Addr>(b) * kGranulesPerBlock;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        std::uint64_t word = 0;
        for (unsigned bit = 0; bit < 64; ++bit) {
            if (painted(base + static_cast<Addr>(w) * 64 + bit))
                word |= std::uint64_t{1} << bit;
        }
        blk[w] = word;
    }
    const std::uint64_t pop =
        simd::popcountWords(blk.data(), kWordsPerBlock);
    count_ = count_ - block_counts_[b] + pop;
    block_counts_[b] = static_cast<std::uint32_t>(pop);
    if (pop != 0)
        l1_[b >> 6] |= std::uint64_t{1} << (b & 63);
    else
        l1_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

} // namespace crev::revoker
