#include "revoker/watchdog.h"

#include <algorithm>

#include "base/logging.h"
#include "vm/address_space.h"

namespace crev::revoker {

Cycles
EpochWatchdog::deadline() const
{
    const auto pages =
        static_cast<double>(mmu_.addressSpace().residentPages());
    const double budget =
        pages * static_cast<double>(policy_.per_page_cycles) *
        policy_.slack;
    return std::max(policy_.min_deadline, static_cast<Cycles>(budget));
}

void
EpochWatchdog::nudgeRound(sim::SimThread &self)
{
    const auto dead = rev_.reapDeadSweepers(self);
    stats_.sweepers_reaped += dead.size();
    for (std::size_t i = 0; i < dead.size(); ++i) {
        if (!respawn_ ||
            stats_.sweepers_respawned >= policy_.max_respawns)
            break;
        if (sim::SimThread *nt = respawn_(self); nt != nullptr) {
            (void)nt; // the respawn callback registers it
            ++stats_.sweepers_respawned;
            ++rev_.currentRecovery().respawns;
        }
    }
    rev_.nudge(self);
    ++stats_.nudges;
    ++rev_.currentRecovery().nudges;
}

void
EpochWatchdog::daemonBody(sim::SimThread &self)
{
    std::uint64_t watched_seq = 0;
    unsigned attempt = 0;

    for (;;) {
        self.sleep(policy_.poll_interval);
        if (sched_.shuttingDown())
            return;

        if (rev_.epochInProgress() && rev_.forceCompleted()) {
            // The epoch was already completed by fiat but the daemon
            // remains wedged inside it. Keep nudging it home, and
            // serve any new request it cannot take as a full
            // emergency epoch so allocators never stall behind it.
            if (rev_.requestPending()) {
                rev_.emergencyEpoch(self);
                ++stats_.emergency_epochs;
            }
            rev_.nudge(self);
            continue;
        }

        if (!rev_.epochInProgress()) {
            attempt = 0;
            continue;
        }
        if (rev_.epochSeq() != watched_seq) {
            watched_seq = rev_.epochSeq();
            attempt = 0;
        }

        if (self.now() - rev_.epochStartedAt() <= deadline())
            continue;

        // Overdue: climb the degradation ladder.
        if (attempt == 0)
            ++stats_.deadline_misses;
        if (attempt < policy_.max_nudges) {
            nudgeRound(self);
        } else if (attempt == policy_.max_nudges) {
            rev_.requestRecovery(self);
            ++stats_.recovery_requests;
        } else if (kernel_.epoch().value() % 2 == 1) {
            rev_.forceCompleteEpoch(self);
            ++stats_.stw_fallbacks;
        } else {
            // Counter already even but doEpoch() has not returned:
            // the daemon is wedged past the point of no safety
            // consequence; keep waking it.
            rev_.nudge(self);
        }
        ++attempt;

        // Exponential backoff before re-judging the same epoch.
        self.sleep(policy_.backoff_base << std::min(attempt, 6u));
        if (sched_.shuttingDown())
            return;
    }
}

} // namespace crev::revoker
