#include "revoker/watchdog.h"

#include <algorithm>

#include "base/logging.h"
#include "vm/address_space.h"

namespace crev::revoker {

Cycles
EpochWatchdog::deadline() const
{
    const auto pages =
        static_cast<double>(mmu_.addressSpace().residentPages());
    const double budget =
        pages * static_cast<double>(policy_.per_page_cycles) *
        policy_.slack;
    // Clamp before the cast: double -> uint64 is UB once the budget
    // exceeds the representable range (huge heaps x large slack).
    constexpr double kMaxBudget = 1e18;
    return std::max(policy_.min_deadline,
                    static_cast<Cycles>(std::min(budget, kMaxBudget)));
}

Cycles
EpochWatchdog::backoffDelay(unsigned attempt) const
{
    const Cycles cap = std::max<Cycles>(policy_.max_backoff, 1);
    const Cycles base = std::max<Cycles>(policy_.backoff_base, 1);
    const unsigned shift = std::min(attempt, 6u);
    // Saturating doubling: `base << shift` overflows Cycles once
    // base > 2^58, so compare against the pre-shifted cap instead.
    if (base > (cap >> shift))
        return cap;
    return std::min(base << shift, cap);
}

void
EpochWatchdog::traceEscalation(sim::SimThread &self, unsigned rung)
{
    if (tracer_ != nullptr)
        tracer_->record(self.id(), self.core(), self.now(),
                        trace::EventType::kWatchdogEscalate,
                        static_cast<std::uint8_t>(rung));
}

void
EpochWatchdog::nudgeRound(sim::SimThread &self)
{
    const auto dead = rev_.reapDeadSweepers(self);
    stats_.sweepers_reaped += dead.size();
    for (std::size_t i = 0; i < dead.size(); ++i) {
        if (!respawn_ ||
            stats_.sweepers_respawned >= policy_.max_respawns)
            break;
        if (sim::SimThread *nt = respawn_(self); nt != nullptr) {
            (void)nt; // the respawn callback registers it
            ++stats_.sweepers_respawned;
            ++rev_.currentRecovery().respawns;
        }
    }
    rev_.nudge(self);
    ++stats_.nudges;
    ++rev_.currentRecovery().nudges;
}

void
EpochWatchdog::daemonBody(sim::SimThread &self)
{
    std::uint64_t watched_seq = 0;
    unsigned attempt = 0;
    RecoveryManager::Ticket ladder;
    const auto closeLadder = [&](trace::RecoveryOutcome o) {
        if (recovery_ != nullptr && ladder.open)
            recovery_->close(self, ladder, o);
    };

    for (;;) {
        self.sleep(policy_.poll_interval);
        if (sched_.shuttingDown())
            return;

        if (rev_.epochInProgress() && rev_.forceCompleted()) {
            // The epoch was already completed by fiat but the daemon
            // remains wedged inside it. Keep nudging it home, and
            // serve any new request it cannot take as a full
            // emergency epoch so allocators never stall behind it.
            if (rev_.requestPending()) {
                traceEscalation(self, 4);
                rev_.emergencyEpoch(self);
                ++stats_.emergency_epochs;
            }
            rev_.nudge(self);
            continue;
        }

        if (!rev_.epochInProgress()) {
            // The watched epoch (if any) reached completion.
            closeLadder(trace::RecoveryOutcome::kSucceeded);
            attempt = 0;
            continue;
        }
        if (rev_.epochSeq() != watched_seq) {
            closeLadder(trace::RecoveryOutcome::kSucceeded);
            watched_seq = rev_.epochSeq();
            attempt = 0;
        }

        if (self.now() - rev_.epochStartedAt() <= deadline())
            continue;

        // Overdue: climb the degradation ladder. Each escalation round
        // is one attempt on the epoch's kEpochLadder ticket.
        if (attempt == 0) {
            ++stats_.deadline_misses;
            if (recovery_ != nullptr && !ladder.open)
                ladder = recovery_->open(
                    self, trace::RecoveryProtocol::kEpochLadder);
        }
        if (recovery_ != nullptr)
            (void)recovery_->attempt(self, ladder);
        stats_.stalled_threads +=
            sched_.stalledThreads(self.now(), deadline()).size();
        if (attempt < policy_.max_nudges) {
            traceEscalation(self, 1);
            nudgeRound(self);
        } else if (attempt == policy_.max_nudges) {
            traceEscalation(self, 2);
            rev_.requestRecovery(self);
            ++stats_.recovery_requests;
        } else if (kernel_.epoch().value() % 2 == 1) {
            traceEscalation(self, 3);
            rev_.forceCompleteEpoch(self);
            ++stats_.stw_fallbacks;
            closeLadder(trace::RecoveryOutcome::kSucceeded);
            // The epoch is now complete (by fiat); the ladder must
            // re-arm rather than carry this escalation level into the
            // next epoch and instantly force-complete it too. The seq
            // check above resets attempt when the *daemon* starts a
            // fresh epoch, but emergency epochs served on the watchdog
            // thread never bump the seq — reset explicitly.
            attempt = 0;
            self.sleep(backoffDelay(1));
            if (sched_.shuttingDown())
                return;
            continue;
        } else {
            // Counter already even but doEpoch() has not returned:
            // the daemon is wedged past the point of no safety
            // consequence; keep waking it.
            rev_.nudge(self);
        }
        ++attempt;

        // Exponential backoff before re-judging the same epoch.
        self.sleep(backoffDelay(attempt));
        if (sched_.shuttingDown())
            return;
    }
}

} // namespace crev::revoker
