/**
 * @file
 * "Paint+sync" (paper §5): the userspace quarantine machinery —
 * bitmap painting, epoch waits — with no revocation pass at all. It
 * provides no temporal safety; it exists to isolate quarantine
 * overheads from sweep overheads in the experiments.
 */

#ifndef CREV_REVOKER_PAINT_ONLY_H_
#define CREV_REVOKER_PAINT_ONLY_H_

#include "revoker/revoker.h"

namespace crev::revoker {

/** Epochs advance instantly; nothing is swept. */
class PaintOnlyRevoker : public Revoker
{
  public:
    using Revoker::Revoker;

    const char *name() const override { return "paint+sync"; }

  protected:
    void
    doEpoch(sim::SimThread &self) override
    {
        // No snapshotAuditSet(): this strategy makes no revocation
        // guarantee, so there is nothing to audit.
        kernel_.epoch().advance(self);
        self.accrue(mmu_.costs().syscall);
        finishEpoch(self);
        timings_.push_back(EpochTiming{});
    }
};

} // namespace crev::revoker

#endif // CREV_REVOKER_PAINT_ONLY_H_
