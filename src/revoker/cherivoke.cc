#include "revoker/cherivoke.h"

#include <vector>

#include "vm/address_space.h"

namespace crev::revoker {

void
CheriVokeRevoker::doEpoch(sim::SimThread &self)
{
    kern::EpochCounter &epoch = kernel_.epoch();
    epoch.advance(self); // odd: revocation in progress
    snapshotAuditSet();

    EpochTiming timing;
    const Cycles begin = stwBegin(self);
    tracePhaseBegin(self, trace::Phase::kStwScan);

    scanRegistersAndHoards(self);

    // Visit every page that has ever held capabilities; the whole
    // sweep happens with the world stopped. The cap-ever page index
    // replaces the full page-table walk (identical list either way).
    const std::vector<Addr> pages = collectPages(
        mmu_.addressSpace().capEverPages(),
        [](const vm::Pte &p) { return p.cap_ever; });
    prescanPages(pages);
    PublishOptions dirty_clear;
    dirty_clear.set_generation = false;
    dirty_clear.charge_and_shootdown = false;
    for (Addr va : pages) {
        sweep_.sweepPage(self, va);
        vm::Pte *p = mmu_.addressSpace().findPte(va);
        if (p != nullptr)
            sweep_.publishPage(self, *p, va, dirty_clear,
                               vm::PteContext::kStw);
    }
    prescanDone();

    timing.stw_duration = self.now() - begin;
    tracePhaseEnd(self, trace::Phase::kStwScan);
    sched_.resumeWorld(self);

    finishEpoch(self); // even: complete
    timings_.push_back(timing);
}

} // namespace crev::revoker
