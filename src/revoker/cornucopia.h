/**
 * @file
 * The Cornucopia strategy (paper §2.2.5): a concurrent sweep over
 * capability-dirty pages, then a stop-the-world re-sweep of pages
 * re-dirtied during the concurrent phase, plus the register/hoard
 * scan.
 */

#ifndef CREV_REVOKER_CORNUCOPIA_H_
#define CREV_REVOKER_CORNUCOPIA_H_

#include "revoker/revoker.h"

namespace crev::revoker {

/** Two-phase (concurrent + STW) store-barrier revoker. */
class CornucopiaRevoker : public Revoker
{
  public:
    using Revoker::Revoker;

    const char *name() const override { return "cornucopia"; }

  protected:
    void doEpoch(sim::SimThread &self) override;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_CORNUCOPIA_H_
