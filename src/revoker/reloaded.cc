#include "revoker/reloaded.h"

#include "base/logging.h"
#include "sim/fault_injector.h"
#include "vm/address_space.h"

namespace crev::revoker {

ReloadedRevoker::ReloadedRevoker(sim::Scheduler &sched, vm::Mmu &mmu,
                                 kern::Kernel &kernel,
                                 RevocationBitmap &bitmap,
                                 const RevokerOptions &opts)
    : Revoker(sched, mmu, kernel, bitmap, opts)
{
}

void
ReloadedRevoker::faultDone(sim::SimThread &t)
{
    // Degraded recovery may have voided the in-flight count while this
    // handler was still running; never underflow past that reset.
    if (faults_in_flight_ > 0)
        --faults_in_flight_;
    fault_done_event_.notifyAll(t);
}

void
ReloadedRevoker::handleLoadFault(sim::SimThread &t, Addr fault_va)
{
    deliverLoadFault(t, fault_va, /*primary=*/true);
    // Stale-TLB style duplicate: the same trap is delivered twice; the
    // second delivery finds the page healed and exits early, costing
    // only handler time. Accounting must stay balanced.
    if (opts_.injector != nullptr &&
        opts_.injector->duplicateFaultDelivery(t))
        deliverLoadFault(t, fault_va, /*primary=*/false);
}

void
ReloadedRevoker::deliverLoadFault(sim::SimThread &t, Addr fault_va,
                                  bool primary)
{
    // A "dropped" delivery models a lost completion notification: the
    // hardware trap still runs and the page still heals (safety is
    // untouched), but the epoch never learns the fault retired —
    // faults_in_flight_ leaks and the epoch wedges until the watchdog
    // steps in.
    const bool lost = primary && opts_.injector != nullptr &&
                      opts_.injector->dropFaultDelivery(t);

    const Cycles t0 = t.now();
    tracePhaseBegin(t, trace::Phase::kLoadFaultSweep);
    const Addr va = pageBase(fault_va);
    vm::AddressSpace &as = mmu_.addressSpace();
    sim::SimMutex &pmap = as.pmapLock();
    const unsigned gen = mmu_.currentGen();
    ++faults_in_flight_;

    // First pmap acquisition: detect a stale TLB — the PTE may have
    // already been brought up to date by another core (§4.3).
    pmap.lock(t);
    vm::Pte *p = as.findPte(va);
    CREV_ASSERT(p != nullptr && p->valid);
    if (p->clg == gen && !p->cap_load_trap) {
        pmap.unlock(t);
        tracePhaseEnd(t, trace::Phase::kLoadFaultSweep);
        if (!lost) {
            fault_time_ += t.now() - t0;
            ++fault_count_;
            faultDone(t);
        }
        return;
    }
    pmap.unlock(t);

    // Sweep without locks held (probing the bitmap may itself fault).
    bool clean = true;
    if (p->cap_ever)
        clean = sweep_.sweepPage(t, va);

    // Second acquisition: idempotently publish the new generation.
    pmap.lock(t);
    if (p->clg != gen || p->cap_load_trap) {
        PublishOptions o;
        o.gen = gen;
        o.clean = clean;
        o.clean_page_detection = opts_.clean_page_detection;
        sweep_.publishPage(t, *p, va, o, vm::PteContext::kLocked);
    }
    pmap.unlock(t);

    tracePhaseEnd(t, trace::Phase::kLoadFaultSweep);
    if (!lost) {
        fault_time_ += t.now() - t0;
        ++fault_count_;
        faultDone(t);
    }
}

Addr
ReloadedRevoker::nextWork()
{
    if (work_next_ >= work_.size())
        return 0;
    return work_[work_next_++];
}

void
ReloadedRevoker::collectStalePages()
{
    // The resident-page index replaces the full page-table walk
    // (identical ascending list: the index mirrors the valid PTEs).
    const unsigned gen = mmu_.currentGen();
    work_ = collectPages(
        mmu_.addressSpace().residentPageSet(), [gen](const vm::Pte &p) {
            return p.clg != gen && !p.cap_load_trap;
        });
    work_next_ = 0;
}

void
ReloadedRevoker::visitPage(sim::SimThread &t, Addr va)
{
    vm::AddressSpace &as = mmu_.addressSpace();
    sim::SimMutex &pmap = as.pmapLock();
    const unsigned gen = mmu_.currentGen();

    pmap.lock(t);
    vm::Pte *p = as.findPte(va);
    if (p == nullptr || !p->valid ||
        (p->clg == gen && !p->cap_load_trap)) {
        // Freed, or already healed by a foreground fault.
        pmap.unlock(t);
        return;
    }
    pmap.unlock(t);

    bool clean = true;
    if (p->cap_ever)
        clean = sweep_.sweepPage(t, va);

    pmap.lock(t);
    if (p->valid && (p->clg != gen || p->cap_load_trap)) {
        PublishOptions o;
        o.gen = gen;
        o.clean = clean;
        o.clean_page_detection = opts_.clean_page_detection;
        o.always_trap_clean = opts_.always_trap_clean_pages;
        sweep_.publishPage(t, *p, va, o, vm::PteContext::kLocked);
    }
    pmap.unlock(t);
}

void
ReloadedRevoker::helperBody(sim::SimThread &self)
{
    sim::FaultInjector *inj = opts_.injector;
    for (;;) {
        while (!epoch_active_) {
            if (sched_.shuttingDown())
                return;
            helper_event_.wait(self);
        }
        // A force-completed epoch can leave epoch_active_ set through
        // shutdown; without this check the helper would spin here.
        if (sched_.shuttingDown())
            return;
        ++helpers_busy_;
        busy_helper_ids_.insert(self.id());
        for (Addr va = nextWork(); va != 0; va = nextWork()) {
            if (inj != nullptr) {
                if (inj->sweeperKill(self)) {
                    // Die mid-item, taking the popped page and our
                    // helpers_busy_ slot to the grave — precisely the
                    // wounds reapDeadSweepers() and the leftover
                    // rescan in doEpoch() exist to heal.
                    return;
                }
                const Cycles stall = inj->sweeperStall(self);
                if (stall > 0)
                    self.sleep(stall);
            }
            visitPage(self, va);
        }
        busy_helper_ids_.erase(self.id());
        --helpers_busy_;
        helper_done_event_.notifyAll(self);
        // Wait for the epoch flag to drop before re-arming.
        while (epoch_active_ && !sched_.shuttingDown())
            helper_event_.wait(self);
    }
}

void
ReloadedRevoker::nudge(sim::SimThread &caller)
{
    Revoker::nudge(caller);
    helper_event_.notifyAll(caller);
    helper_done_event_.notifyAll(caller);
    fault_done_event_.notifyAll(caller);
}

std::vector<sim::SimThread *>
ReloadedRevoker::reapDeadSweepers(sim::SimThread &self)
{
    auto dead = Revoker::reapDeadSweepers(self);
    bool repaired = false;
    for (sim::SimThread *t : dead) {
        if (busy_helper_ids_.erase(t->id()) > 0) {
            CREV_ASSERT(helpers_busy_ > 0);
            --helpers_busy_;
            repaired = true;
        }
    }
    if (repaired)
        helper_done_event_.notifyAll(self);
    return dead;
}

void
ReloadedRevoker::doEpoch(sim::SimThread &self)
{
    kern::EpochCounter &epoch = kernel_.epoch();
    sim::FaultInjector *inj = opts_.injector;

    epoch.advance(self); // odd
    snapshotAuditSet();

    EpochTiming timing;

    // Short STW phase: flip the per-core load generations (PTEs are
    // untouched — §4.1's one-update-per-epoch property) and scan
    // registers and kernel hoards.
    const Cycles begin = stwBegin(self);
    tracePhaseBegin(self, trace::Phase::kStwScan);
    mmu_.flipAllCoreGens(self);
    scanRegistersAndHoards(self);
    timing.stw_duration = self.now() - begin;
    tracePhaseEnd(self, trace::Phase::kStwScan);
    sched_.resumeWorld(self);

    // Background phase: visit every page still carrying the old
    // generation. Foreground faults race us benignly (visitPage
    // rechecks under the pmap lock; page visits are idempotent).
    const Cycles cbegin = self.now();
    tracePhaseBegin(self, trace::Phase::kConcurrentSweep);
    collectStalePages();
    // Pre-decode the whole work list ahead of the sweep cursor; the
    // helpers pulling from work_ share the pipeline via sweep_.
    prescanPages(work_);

    epoch_active_ = true;
    helper_event_.notifyAll(self);
    for (Addr va = nextWork(); va != 0; va = nextWork()) {
        if (inj != nullptr) {
            const Cycles stall = inj->sweeperStall(self);
            if (stall > 0)
                self.sleep(stall);
        }
        visitPage(self, va);
    }
    tracePhaseBegin(self, trace::Phase::kDrain);
    while (helpers_busy_ > 0 && !sched_.shuttingDown() &&
           !recoveryRequested() && !forceCompleted())
        helper_done_event_.wait(self);
    epoch_active_ = false;
    helper_event_.notifyAll(self);

    // A helper killed mid-item can take a popped page to the grave:
    // anything still stale after the drain is revisited here (in
    // healthy epochs one extra scan finds nothing). Terminates
    // because every visit publishes the page's disposition.
    for (;;) {
        collectStalePages();
        if (work_.empty())
            break;
        for (Addr va = nextWork(); va != 0; va = nextWork())
            visitPage(self, va);
    }

    // The epoch is not over until in-flight foreground fault handlers
    // have published their pages (they also belong to this epoch's
    // accounting).
    while (faults_in_flight_ > 0 && !sched_.shuttingDown() &&
           !recoveryRequested() && !forceCompleted())
        fault_done_event_.wait(self);
    tracePhaseEnd(self, trace::Phase::kDrain);
    prescanDone();

    if (recoveryRequested() || forceCompleted()) {
        // Degradation: a lost fault completion (or similar) wedged the
        // epoch. If the watchdog has not already completed it by fiat,
        // run the emergency sweep ourselves; either way the in-flight
        // count is void — it counts notifications, not obligations,
        // and the sweep discharged every obligation.
        if (!forceCompleted()) {
            timing.stw_duration += emergencyStwSweep(self);
            currentRecovery().degraded = true;
        }
        faults_in_flight_ = 0;
    }

    tracePhaseEnd(self, trace::Phase::kConcurrentSweep);
    timing.concurrent_duration = self.now() - cbegin;
    // Delta accounting so that every fault (including rare stale-TLB
    // faults landing between epochs) is attributed to exactly one
    // epoch record.
    timing.fault_time_total = fault_time_ - fault_time_recorded_;
    timing.fault_count = fault_count_ - fault_count_recorded_;
    fault_time_recorded_ = fault_time_;
    fault_count_recorded_ = fault_count_;

    finishEpoch(self); // even (skipped if the watchdog got there first)
    timings_.push_back(timing);
}

} // namespace crev::revoker
