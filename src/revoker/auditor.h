/**
 * @file
 * The whole-machine revocation invariant checker.
 *
 * Walks every resident page, every thread's register file, and the
 * kernel hoards — off the virtual clock, between simulated
 * instructions — and verifies the paper's central guarantee (§2.2.3):
 * after an epoch completes, no tagged capability anywhere has its base
 * inside address space that was marked quarantined before that epoch
 * began. The property test suite runs this after every epoch of
 * randomized workloads under every strategy.
 */

#ifndef CREV_REVOKER_AUDITOR_H_
#define CREV_REVOKER_AUDITOR_H_

#include <string>
#include <vector>

#include "kern/kernel.h"
#include "revoker/revoker.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::revoker {

/** Off-clock invariant auditor. */
class Auditor
{
  public:
    Auditor(sim::Scheduler &sched, vm::Mmu &mmu, kern::Kernel &kernel,
            Revoker &revoker)
        : sched_(sched), mmu_(mmu), kernel_(kernel), revoker_(revoker)
    {
    }

    /**
     * Scan the machine; returns a description of each violation
     * (empty means the invariant holds).
     */
    std::vector<std::string> findViolations();

    /** Scan and panic on any violation (installed as the audit hook). */
    void check();

    /** Total audits performed. */
    std::uint64_t audits() const { return audits_; }

  private:
    void checkCap(const cap::Capability &c, const std::string &where,
                  std::vector<std::string> &out);

    sim::Scheduler &sched_;
    vm::Mmu &mmu_;
    kern::Kernel &kernel_;
    Revoker &revoker_;
    std::uint64_t audits_ = 0;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_AUDITOR_H_
