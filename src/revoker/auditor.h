/**
 * @file
 * The whole-machine revocation invariant checker.
 *
 * Walks every resident page, every thread's register file, and the
 * kernel hoards — off the virtual clock, between simulated
 * instructions — and verifies the paper's central guarantee (§2.2.3):
 * after an epoch completes, no tagged capability anywhere has its base
 * inside address space that was marked quarantined before that epoch
 * began. The property test suite runs this after every epoch of
 * randomized workloads under every strategy.
 */

#ifndef CREV_REVOKER_AUDITOR_H_
#define CREV_REVOKER_AUDITOR_H_

#include <string>
#include <vector>

#include "kern/kernel.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::sim {
class FaultInjector;
} // namespace crev::sim

namespace crev::revoker {

/** Off-clock invariant auditor. */
class Auditor
{
  public:
    Auditor(sim::Scheduler &sched, vm::Mmu &mmu, kern::Kernel &kernel,
            Revoker &revoker)
        : sched_(sched), mmu_(mmu), kernel_(kernel), revoker_(revoker)
    {
    }

    /**
     * Scan the machine; returns a description of each violation
     * (empty means the invariant holds).
     */
    std::vector<std::string> findViolations();

    /**
     * Scan and panic on any violation (installed as the audit hook).
     * With a thread and a fault injector attached, the painted-set
     * summary may first take a seeded bit flip; the audit detects the
     * damage and repairs the block from ground-truth shadow bytes
     * (panicking only if repair fails), all inside this call — the
     * corruption never escapes into a probe's self-check.
     */
    void check(sim::SimThread *self = nullptr);

    /** Total audits performed. */
    std::uint64_t audits() const { return audits_; }

    /** Summary corruptions detected (and repaired) so far. */
    std::uint64_t summaryRepairs() const { return summary_repairs_; }

    /** Attach the fault injector (null = off): arms the corrupted
     *  summary-word domain at audit entry. */
    void setFaultInjector(sim::FaultInjector *fi) { injector_ = fi; }

    /** Attach the recovery manager (null = off): summary rebuilds
     *  become kSummaryRepair tickets. */
    void setRecoveryManager(RecoveryManager *rm) { recovery_ = rm; }

  private:
    void checkCap(const cap::Capability &c, const std::string &where,
                  std::vector<std::string> &out);

    /**
     * Detect maintained-summary damage in the painted set and rebuild
     * the inconsistent blocks from the simulated shadow bytes (the
     * ground truth the mirror shadows). Panics if the structure is
     * still inconsistent after the bounded repair attempts.
     */
    void repairSummaries(sim::SimThread *self);

    /** Ground truth for one granule: its simulated shadow bit. */
    bool groundTruthPainted(Addr granule);

    sim::Scheduler &sched_;
    vm::Mmu &mmu_;
    kern::Kernel &kernel_;
    Revoker &revoker_;
    sim::FaultInjector *injector_ = nullptr;
    RecoveryManager *recovery_ = nullptr;
    std::uint64_t audits_ = 0;
    std::uint64_t summary_repairs_ = 0;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_AUDITOR_H_
