#include "revoker/paint_only.h"

// All behaviour is defined inline in the header; this translation unit
// anchors the class for the library.
