/**
 * @file
 * Epoch watchdog: detects stuck revocation epochs and drives graceful
 * degradation.
 *
 * The temporal-safety story of every strategy rests on one liveness
 * property: the public epoch counter keeps advancing, because
 * allocators block on it (QuarantineShim::maybeBlock()'s mrs-style
 * backpressure and drain()). Concurrent revocation adds failure modes
 * a stop-the-world design never had — background sweepers can stall or
 * die, and load-fault completions can be lost — so the watchdog runs
 * as an independent daemon with a per-epoch deadline derived from the
 * work left (resident pages × per-page cost × slack) and escalates
 * through a degradation ladder when the deadline is missed:
 *
 *   1. *Nudge*: reap dead sweeper threads (repairing any epoch
 *      accounting they held), optionally respawn replacements with
 *      exponential backoff between attempts, and re-notify every event
 *      the daemon could be blocked on.
 *   2. *Request recovery*: ask the revoker daemon to finish the epoch
 *      itself in degraded mode (emergency CHERIvoke-style STW sweep).
 *   3. *Force-complete*: if the daemon is unresponsive, run the
 *      emergency sweep on the watchdog thread and advance the counter
 *      by fiat; if the daemon then stays wedged while new requests
 *      arrive, serve those as full emergency epochs too.
 *
 * Degraded epochs trade the paper's pause-time win for CHERIvoke's
 * simplicity — but never trade away safety or liveness.
 */

#ifndef CREV_REVOKER_WATCHDOG_H_
#define CREV_REVOKER_WATCHDOG_H_

#include <cstdint>
#include <functional>

#include "base/types.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"

namespace crev::revoker {

/** Deadline and escalation tuning for the epoch watchdog. */
struct WatchdogPolicy
{
    /** Spawn the watchdog even without fault injection. */
    bool enabled = false;

    /** How often the watchdog polls epoch progress. */
    Cycles poll_interval = 250'000;

    /** Floor on the per-epoch deadline (tiny heaps, empty epochs). */
    Cycles min_deadline = 2'000'000;
    /** Budgeted sweep cost per resident page. */
    Cycles per_page_cycles = 8'000;
    /** Multiplier on the budget before an epoch counts as stuck. */
    double slack = 4.0;

    /** Ladder rung 1 attempts before requesting degraded completion. */
    unsigned max_nudges = 2;
    /** Base of the exponential backoff between escalation attempts. */
    Cycles backoff_base = 250'000;
    /**
     * Ceiling on one backoff sleep. The doubling saturates here
     * instead of shifting past the width of Cycles: with a large
     * backoff_base the unclamped `base << attempt` overflows to a
     * tiny (or huge) sleep and the ladder either spins or parks the
     * watchdog beyond the end of the run.
     */
    Cycles max_backoff = 16'000'000;
    /** Total sweeper respawns allowed per run. */
    unsigned max_respawns = 2;
};

/** What the watchdog actually did (RunMetrics observability). */
struct RecoveryStats
{
    std::uint64_t deadline_misses = 0;   //!< epochs that went overdue
    std::uint64_t nudges = 0;            //!< rung-1 wakeup rounds
    std::uint64_t sweepers_reaped = 0;   //!< dead sweepers detected
    std::uint64_t sweepers_respawned = 0;
    std::uint64_t recovery_requests = 0; //!< rung-2 degraded requests
    std::uint64_t stw_fallbacks = 0;     //!< rung-3 force completions
    std::uint64_t emergency_epochs = 0;  //!< epochs run by the watchdog
    /** Stalled-thread observations while an epoch was overdue (one
     *  per stalled thread per escalation round). */
    std::uint64_t stalled_threads = 0;
};

/**
 * The watchdog daemon. The Machine spawns daemonBody() on its own
 * simulated thread whenever fault injection or the policy enables it.
 */
class EpochWatchdog
{
  public:
    /**
     * Respawns one background sweeper; returns the new thread (which
     * the callback must register with the revoker) or nullptr if the
     * strategy has no sweepers to respawn.
     */
    using RespawnFn = std::function<sim::SimThread *(sim::SimThread &)>;

    EpochWatchdog(sim::Scheduler &sched, Revoker &rev, vm::Mmu &mmu,
                  kern::Kernel &kernel, const WatchdogPolicy &policy)
        : sched_(sched), rev_(rev), mmu_(mmu), kernel_(kernel),
          policy_(policy)
    {
    }

    void setRespawnFn(RespawnFn fn) { respawn_ = std::move(fn); }

    /** The watchdog loop (bound to its daemon thread at spawn). */
    void daemonBody(sim::SimThread &self);

    const RecoveryStats &stats() const { return stats_; }
    const WatchdogPolicy &policy() const { return policy_; }

    /** Attach an event tracer (null = off); escalations become
     *  kWatchdogEscalate instants (arg8 = rung 1..4). */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    /**
     * Attach the recovery manager (null = off): each overdue epoch
     * becomes a kEpochLadder ticket whose attempts mirror the ladder's
     * escalation rounds. Purely observational — the ladder's own
     * timings and rung order are unchanged.
     */
    void setRecoveryManager(RecoveryManager *rm) { recovery_ = rm; }

  private:
    /** Deadline for the epoch in progress, from pages left to sweep. */
    Cycles deadline() const;

    /** Backoff sleep for escalation @p attempt, saturating at the
     *  policy's max_backoff (never overflows Cycles). */
    Cycles backoffDelay(unsigned attempt) const;

    /** Rung 1: reap/respawn dead sweepers and re-notify events. */
    void nudgeRound(sim::SimThread &self);

    /** Record one escalation rung in the trace. */
    void traceEscalation(sim::SimThread &self, unsigned rung);

    sim::Scheduler &sched_;
    Revoker &rev_;
    vm::Mmu &mmu_;
    kern::Kernel &kernel_;
    WatchdogPolicy policy_;
    RespawnFn respawn_;
    RecoveryStats stats_;
    trace::Tracer *tracer_ = nullptr;
    RecoveryManager *recovery_ = nullptr;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_WATCHDOG_H_
