/**
 * @file
 * The sweep engine: the inner loop shared by every revoker.
 *
 * Sweeping a page means reading all of its cache lines (tags arrive
 * with data on a tagged-memory machine), probing the revocation bitmap
 * for each *tagged* granule using the capability's decoded base
 * (paper footnote 9), and clearing the tags of revoked capabilities.
 * Register files and kernel hoards are scanned with the same probe
 * logic.
 */

#ifndef CREV_REVOKER_SWEEP_H_
#define CREV_REVOKER_SWEEP_H_

#include <cstdint>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "revoker/bitmap.h"
#include "revoker/memo.h"
#include "revoker/prescan.h"
#include "sim/scheduler.h"
#include "vm/mmu.h"

namespace crev::revoker {

/** Cumulative sweep work counters. */
struct SweepStats
{
    std::uint64_t pages_swept = 0;
    std::uint64_t lines_read = 0;
    std::uint64_t caps_seen = 0;    //!< tagged granules inspected
    std::uint64_t caps_revoked = 0; //!< tags cleared
    std::uint64_t regs_scanned = 0;
    std::uint64_t regs_revoked = 0;
};

/**
 * Per-site knobs for SweepEngine::publishPage(). Each revocation
 * strategy publishes page dispositions with a different subset of the
 * full Reloaded behaviour; the options select exactly the writes (and
 * charges) the site performed before the choke point existed.
 */
struct PublishOptions
{
    unsigned gen = 0;     //!< generation to publish (set_generation)
    bool clean = false;   //!< caller's (possibly stale) sweep verdict
    /** Clear cap_ever when the page re-verifies clean. */
    bool clean_page_detection = false;
    /** §7.6: clean pages keep an always-trap disposition. */
    bool always_trap_clean = false;
    /** Refresh CLG / load-trap bits (epoch-healing sites). */
    bool set_generation = true;
    /** Charge the PTE update and shoot down the page's translations. */
    bool charge_and_shootdown = true;
};

/** Shared page/register sweeping machinery. */
class SweepEngine
{
  public:
    SweepEngine(vm::Mmu &mmu, RevocationBitmap &bitmap,
                bool host_fast_paths = true)
        : mmu_(mmu), bitmap_(bitmap), host_fast_paths_(host_fast_paths)
    {
    }

    /**
     * Sweep the resident page at @p page_va on thread @p t. Returns
     * true if the page was found to contain no tagged capabilities
     * (Reloaded's clean-page detection).
     *
     * Two host implementations, one simulated behaviour: the fast
     * path scans packed per-line tag nibbles with countr_zero instead
     * of dispatching per granule, but issues exactly the same charge
     * sequence and makes every tag decision from live state at the
     * same virtual instants as the reference loop (the determinism
     * test holds the two byte-identical).
     */
    bool sweepPage(sim::SimThread &t, Addr page_va);

    /**
     * Scan a register array (a thread's register file or a kernel
     * hoard), revoking painted capabilities in place.
     */
    void scanRegisters(sim::SimThread &t,
                       std::vector<cap::Capability> &regs);

    /** Whether a single capability is slated for revocation. */
    bool isRevoked(sim::SimThread &t, const cap::Capability &c);

    /**
     * The single choke point through which every strategy publishes an
     * in-place PTE disposition (CLG/trap refresh, cap-dirty clear,
     * clean-page detection). Declares the publish to the address space
     * (race-checker observation, or a hard locking assertion when no
     * checker is attached), re-verifies cleanliness against live tags,
     * and applies exactly the writes selected by @p o. Returns the
     * re-verified clean verdict.
     */
    bool publishPage(sim::SimThread &t, vm::Pte &p, Addr page_va,
                     const PublishOptions &o, vm::PteContext ctx);

    const SweepStats &stats() const { return stats_; }

    bool hostFastPaths() const { return host_fast_paths_; }

    /**
     * Attach (or detach, with null) a speculative pre-scan pipeline.
     * Only the fast sweep consults it, and only as a source of
     * pre-decoded capability values that are validated against live
     * raw bits before use; charges and probes are unaffected.
     */
    void setPrescan(PrescanPipeline *p) { prescan_ = p; }

    /**
     * Attach (or detach, with null) the cross-epoch decode memo. The
     * fast sweep consults it when no pre-scan covers the page — again
     * only as a source of pre-decoded values validated against live
     * raw bits — refreshes the page's entry with the candidates it
     * actually observed, and publishPage() restamps freshness after
     * bumping the store generation (memo.h's validity argument).
     */
    void setMemo(DecodeMemo *m) { memo_ = m; }
    DecodeMemo *memo() const { return memo_; }

  private:
    bool sweepPageReference(sim::SimThread &t, Addr page_va);
    bool sweepPageFast(sim::SimThread &t, Addr page_va);

    vm::Mmu &mmu_;
    RevocationBitmap &bitmap_;
    bool host_fast_paths_;
    PrescanPipeline *prescan_ = nullptr;
    DecodeMemo *memo_ = nullptr;
    SweepStats stats_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_SWEEP_H_
