/**
 * @file
 * Cross-epoch decode memoisation for the sweep (DESIGN.md §17.2).
 *
 * The pre-scan pipeline (PR 5) hides decode cost *within* one epoch:
 * candidates are snapshot-decoded ahead of the sweep cursor and
 * reused only when the live raw bits still match. This cache extends
 * the same discipline *across* epochs: every swept page leaves behind
 * its observed (granule, CapBits, base) triples, and later sweeps of
 * the page reuse a triple whenever the live bits equal the recorded
 * bits.
 *
 * Validity argument (two independent layers):
 *
 *  1. Correctness never depends on freshness. cap::decode is a pure
 *     function of the 128 raw bits, so a cached (bits → cap) pair is
 *     valid against *any* future read of equal bits; the sweep
 *     compares the live bits at the virtual instant of use, exactly
 *     as it does for pre-scan snapshots, and decodes live on any
 *     mismatch. Charges (t.accrue per decode, per-line reads) are
 *     produced by the real sweep either way, so simulated results are
 *     bit-identical with the memo on or off.
 *
 *  2. Freshness is a host-cost heuristic. An entry is *page-fresh*
 *     when its (pfn, store-generation, frame-epoch) triple still
 *     matches: no capability store, publish, or shootdown has touched
 *     the page and no frame has been recycled since the entry was
 *     recorded (stamps ride the existing Mmu::storeCap /
 *     SweepEngine::publishPage / Mmu::purgeFreedFrames choke points).
 *     Page-fresh entries let the pre-scan builder skip re-reading the
 *     frame entirely; stale entries are still consulted per granule
 *     under layer 1, they just stop short-circuiting the page scan.
 */

#ifndef CREV_REVOKER_MEMO_H_
#define CREV_REVOKER_MEMO_H_

#include <cstdint>
#include <unordered_map>

#include "base/types.h"
#include "revoker/prescan.h"

namespace crev::revoker {

/** Host-side memo counters (never part of simulated results). */
struct MemoStats {
    std::uint64_t page_hits = 0;    //!< page-fresh scans reused whole
    std::uint64_t cand_hits = 0;    //!< bits-validated decode reuses
    std::uint64_t cand_misses = 0;  //!< live decodes despite an entry
    std::uint64_t stale_pages = 0;  //!< entries found page-stale
    std::uint64_t refreshes = 0;    //!< entries (re)recorded
    std::uint64_t restamps = 0;     //!< publish-time freshness stamps
};

/** Per-page cache of decoded sweep candidates, valid across epochs. */
class DecodeMemo
{
  public:
    struct Entry {
        Addr pfn = 0;
        std::uint64_t store_gen = 0;
        std::uint64_t frame_epoch = 0;
        PrescanPipeline::PageScan scan;
    };

    /** The entry for @p page_va, or null. */
    Entry *find(Addr page_va)
    {
        const auto it = entries_.find(page_va);
        return it == entries_.end() ? nullptr : &it->second;
    }
    const Entry *find(Addr page_va) const
    {
        const auto it = entries_.find(page_va);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Page-freshness: same frame, no store/publish/shootdown, no
     *  frame recycling since the entry was stamped. */
    static bool fresh(const Entry &e, Addr pfn, std::uint64_t gen,
                      std::uint64_t frame_epoch)
    {
        return e.pfn == pfn && e.store_gen == gen &&
               e.frame_epoch == frame_epoch;
    }

    /** Record (or replace) the entry for @p scan's page. */
    void record(Addr pfn, std::uint64_t gen, std::uint64_t frame_epoch,
                PrescanPipeline::PageScan scan)
    {
        Entry &e = entries_[scan.page_va];
        e.pfn = pfn;
        e.store_gen = gen;
        e.frame_epoch = frame_epoch;
        e.scan = std::move(scan);
        ++stats_.refreshes;
    }

    /**
     * Stamp (or create) the entry for @p page_va and hand back its
     * scan storage for in-place (re)filling — the zero-copy twin of
     * record() used by the pre-scan builder: the scanner writes
     * straight into the entry, keeping the candidate vector's
     * capacity across epochs, and the pipeline serves a pointer to
     * it. References stay valid across later prepare()/record()
     * calls (the map is node-based); only invalidate()/clear() on
     * this page drop them. The stamps are taken before the fill, but
     * the builder holds the execution token throughout, so the page
     * is quiescent between stamp and fill.
     */
    Entry &prepare(Addr page_va, Addr pfn, std::uint64_t gen,
                   std::uint64_t frame_epoch)
    {
        Entry &e = entries_[page_va];
        e.pfn = pfn;
        e.store_gen = gen;
        e.frame_epoch = frame_epoch;
        e.scan.page_va = page_va;
        e.scan.cands.clear();
        ++stats_.refreshes;
        return e;
    }

    /**
     * Publish-time restamp: the page was swept at this virtual instant
     * and its PTE just republished (bumping the store generation), so
     * the entry recorded by that sweep is fresh *as of the bumped
     * generation*. No-op without a matching-frame entry.
     */
    void restamp(Addr page_va, Addr pfn, std::uint64_t gen,
                 std::uint64_t frame_epoch)
    {
        Entry *e = find(page_va);
        if (e == nullptr || e->pfn != pfn)
            return;
        e->store_gen = gen;
        e->frame_epoch = frame_epoch;
        ++stats_.restamps;
    }

    void invalidate(Addr page_va) { entries_.erase(page_va); }
    void clear() { entries_.clear(); }
    std::size_t size() const { return entries_.size(); }

    MemoStats &stats() { return stats_; }
    const MemoStats &stats() const { return stats_; }

  private:
    /** Keyed by page VA; looked up, never iterated. */
    std::unordered_map<Addr, Entry> entries_;
    MemoStats stats_;
};

} // namespace crev::revoker

#endif // CREV_REVOKER_MEMO_H_
