#include "revoker/auditor.h"

#include <cstdio>

#include "base/logging.h"
#include "cap/compression.h"
#include "sim/fault_injector.h"
#include "vm/address_space.h"

namespace crev::revoker {

void
Auditor::checkCap(const cap::Capability &c, const std::string &where,
                  std::vector<std::string> &out)
{
    if (!c.tag)
        return;
    if (revoker_.auditSet().test(c.base)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "stale capability in %s: base=0x%llx "
                      "(quarantined before the last completed epoch)",
                      where.c_str(),
                      static_cast<unsigned long long>(c.base));
        out.push_back(buf);
    }
}

std::vector<std::string>
Auditor::findViolations()
{
    ++audits_;
    std::vector<std::string> out;
    mem::PhysMem &pm = mmu_.physMem();

    // 0. The two-level painted-set summaries. Every sweep probe's
    // self-check and every clean-region skip trusts the level-1 words
    // and running count, so their agreement with the level-0 ground
    // truth is an audited invariant, not an assumption.
    for (const std::string &v :
         revoker_.bitmap().painted().checkConsistent())
        out.push_back("painted-set summary: " + v);
    for (const std::string &v : revoker_.auditSet().checkConsistent())
        out.push_back("audit-set summary: " + v);

    // 1. All of user memory. While walking, cross-check the host
    // tag-summary structures against the ground-truth tag words: a
    // desynchronised line summary would silently corrupt the sweep's
    // fast path, so it is an audited invariant, not an assumption.
    mmu_.addressSpace().forEachResidentPage([&](Addr va, vm::Pte &p) {
        const mem::Frame &f = pm.frame(p.pfn);
        if (!f.summaryConsistent()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "line-tag summary desync on frame pfn=0x%llx "
                          "(page va=0x%llx)",
                          static_cast<unsigned long long>(p.pfn),
                          static_cast<unsigned long long>(va));
            out.push_back(buf);
        }
        if (f.anyTags() != (f.tagCount() != 0)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "anyTags()/tagCount() desync on frame "
                          "pfn=0x%llx",
                          static_cast<unsigned long long>(p.pfn));
            out.push_back(buf);
        }
        if (!f.anyTags())
            return;
        for (std::size_t g = 0; g < kGranulesPerPage; ++g) {
            if (!f.testTag(g))
                continue;
            cap::CapBits bits;
            const Addr paddr =
                (p.pfn << kPageBits) + g * kGranuleSize;
            pm.loadCap(paddr, bits);
            char where[96];
            std::snprintf(where, sizeof(where),
                          "memory va=0x%llx (pte: ever=%d dirty=%d "
                          "clg=%u/%u trap=%d)",
                          static_cast<unsigned long long>(
                              va + g * kGranuleSize),
                          p.cap_ever, p.cap_dirty, p.clg,
                          mmu_.currentGen(), p.cap_load_trap);
            checkCap(cap::decode(bits, true), where, out);
        }
    });

    // 2. Every thread's register file.
    for (const auto &tp : sched_.threads())
        for (const auto &r : tp->registerFile())
            checkCap(r, "registers of " + tp->name(), out);

    // 3. Kernel hoards.
    for (const auto &c : kernel_.hoard().slots())
        checkCap(c, "kernel hoard", out);

    return out;
}

bool
Auditor::groundTruthPainted(Addr granule)
{
    // The simulated shadow byte holding this granule's bit. A
    // non-resident shadow page means the kernel never painted anything
    // there: the true bit is clear.
    std::uint8_t byte = 0;
    if (!mmu_.peekByte(vm::kShadowBase + (granule >> 3), &byte))
        return false;
    return ((byte >> (granule & 7)) & 1) != 0;
}

void
Auditor::repairSummaries(sim::SimThread *self)
{
    ShadowSummary &painted =
        revoker_.bitmap().mutableSummaryForRepair();
    std::vector<std::size_t> bad = painted.inconsistentBlocks();
    if (bad.empty())
        return;

    // One ticket covers the whole repair episode; each round (however
    // many blocks it rebuilds) is one attempt. The rebuild source is
    // the simulated shadow bytes — the ground truth the mirror
    // shadows — so a single round normally suffices; the bounded loop
    // guards the guard.
    RecoveryManager::Ticket tk;
    const bool managed = recovery_ != nullptr && self != nullptr;
    if (managed)
        tk = recovery_->open(*self,
                             RecoveryProtocol::kSummaryRepair);
    bool repaired = false;
    for (;;) {
        if (managed && !recovery_->attempt(*self, tk))
            break;
        for (std::size_t b : bad)
            painted.rebuildBlock(
                b, [this](Addr g) { return groundTruthPainted(g); });
        ++summary_repairs_;
        bad = painted.inconsistentBlocks();
        if (bad.empty()) {
            repaired = true;
            break;
        }
        if (!managed)
            break;
    }
    if (managed)
        recovery_->close(*self, tk,
                         repaired
                             ? RecoveryOutcome::kSucceeded
                             : recovery_->failureOutcome(self->now(),
                                                         tk));
    if (!repaired)
        panic("painted-set summary corruption unrepairable "
              "(%zu blocks still inconsistent)",
              bad.size());
}

void
Auditor::check(sim::SimThread *self)
{
    if (self != nullptr && injector_ != nullptr) {
        std::uint64_t entropy = 0;
        if (injector_->corruptSummaryWord(*self, &entropy)) {
            Addr granule = 0;
            revoker_.bitmap().mutableSummaryForRepair().corruptBit(
                entropy, &granule);
        }
    }
    repairSummaries(self);
    const auto violations = findViolations();
    if (!violations.empty()) {
        for (const auto &v : violations)
            warn("audit: %s", v.c_str());
        panic("revocation invariant violated (%zu stale capabilities)",
              violations.size());
    }
}

} // namespace crev::revoker
