#include "revoker/auditor.h"

#include <cstdio>

#include "base/logging.h"
#include "cap/compression.h"
#include "vm/address_space.h"

namespace crev::revoker {

void
Auditor::checkCap(const cap::Capability &c, const std::string &where,
                  std::vector<std::string> &out)
{
    if (!c.tag)
        return;
    if (revoker_.auditSet().test(c.base)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "stale capability in %s: base=0x%llx "
                      "(quarantined before the last completed epoch)",
                      where.c_str(),
                      static_cast<unsigned long long>(c.base));
        out.push_back(buf);
    }
}

std::vector<std::string>
Auditor::findViolations()
{
    ++audits_;
    std::vector<std::string> out;
    mem::PhysMem &pm = mmu_.physMem();

    // 0. The two-level painted-set summaries. Every sweep probe's
    // self-check and every clean-region skip trusts the level-1 words
    // and running count, so their agreement with the level-0 ground
    // truth is an audited invariant, not an assumption.
    for (const std::string &v :
         revoker_.bitmap().painted().checkConsistent())
        out.push_back("painted-set summary: " + v);
    for (const std::string &v : revoker_.auditSet().checkConsistent())
        out.push_back("audit-set summary: " + v);

    // 1. All of user memory. While walking, cross-check the host
    // tag-summary structures against the ground-truth tag words: a
    // desynchronised line summary would silently corrupt the sweep's
    // fast path, so it is an audited invariant, not an assumption.
    mmu_.addressSpace().forEachResidentPage([&](Addr va, vm::Pte &p) {
        const mem::Frame &f = pm.frame(p.pfn);
        if (!f.summaryConsistent()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "line-tag summary desync on frame pfn=0x%llx "
                          "(page va=0x%llx)",
                          static_cast<unsigned long long>(p.pfn),
                          static_cast<unsigned long long>(va));
            out.push_back(buf);
        }
        if (f.anyTags() != (f.tagCount() != 0)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "anyTags()/tagCount() desync on frame "
                          "pfn=0x%llx",
                          static_cast<unsigned long long>(p.pfn));
            out.push_back(buf);
        }
        if (!f.anyTags())
            return;
        for (std::size_t g = 0; g < kGranulesPerPage; ++g) {
            if (!f.testTag(g))
                continue;
            cap::CapBits bits;
            const Addr paddr =
                (p.pfn << kPageBits) + g * kGranuleSize;
            pm.loadCap(paddr, bits);
            char where[96];
            std::snprintf(where, sizeof(where),
                          "memory va=0x%llx (pte: ever=%d dirty=%d "
                          "clg=%u/%u trap=%d)",
                          static_cast<unsigned long long>(
                              va + g * kGranuleSize),
                          p.cap_ever, p.cap_dirty, p.clg,
                          mmu_.currentGen(), p.cap_load_trap);
            checkCap(cap::decode(bits, true), where, out);
        }
    });

    // 2. Every thread's register file.
    for (const auto &tp : sched_.threads())
        for (const auto &r : tp->registerFile())
            checkCap(r, "registers of " + tp->name(), out);

    // 3. Kernel hoards.
    for (const auto &c : kernel_.hoard().slots())
        checkCap(c, "kernel hoard", out);

    return out;
}

void
Auditor::check()
{
    const auto violations = findViolations();
    if (!violations.empty()) {
        for (const auto &v : violations)
            warn("audit: %s", v.c_str());
        panic("revocation invariant violated (%zu stale capabilities)",
              violations.size());
    }
}

} // namespace crev::revoker
