#include "core/metrics.h"

#include <cstdio>

namespace crev::core {

double
RunMetrics::wallSeconds() const
{
    return static_cast<double>(wall_cycles) / kCyclesPerSecond;
}

double
RunMetrics::revocationsPerSecond() const
{
    const double s = wallSeconds();
    return s > 0 ? static_cast<double>(epochs.size()) / s : 0.0;
}

std::size_t
RunMetrics::degradedEpochs() const
{
    std::size_t n = 0;
    for (const auto &e : epochs)
        if (e.recovery.degraded)
            ++n;
    return n;
}

std::string
RunMetrics::summary() const
{
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "wall=%.3fms cpu=%.3fms bus=%llu rss=%zupg epochs=%zu "
        "revoked=%llu faults=%llu blocked=%llu/%.3fms maxq=%lluB "
        "degraded=%zu",
        cyclesToMillis(wall_cycles), cyclesToMillis(cpu_cycles),
        static_cast<unsigned long long>(bus_transactions_total),
        peak_rss_pages, epochs.size(),
        static_cast<unsigned long long>(sweep.caps_revoked),
        static_cast<unsigned long long>(mmu.load_barrier_faults),
        static_cast<unsigned long long>(quarantine.blocked_ops),
        cyclesToMillis(quarantine.blocked_cycles),
        static_cast<unsigned long long>(
            quarantine.max_quarantine_bytes),
        degradedEpochs());
    return buf;
}

} // namespace crev::core
