#include "core/metrics.h"

#include <cstdio>

namespace crev::core {

double
RunMetrics::wallSeconds() const
{
    return static_cast<double>(wall_cycles) / kCyclesPerSecond;
}

double
RunMetrics::revocationsPerSecond() const
{
    const double s = wallSeconds();
    return s > 0 ? static_cast<double>(epochs.size()) / s : 0.0;
}

std::string
RunMetrics::summary() const
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "wall=%.3fms cpu=%.3fms bus=%llu rss=%zupg epochs=%zu "
        "revoked=%llu faults=%llu",
        cyclesToMillis(wall_cycles), cyclesToMillis(cpu_cycles),
        static_cast<unsigned long long>(bus_transactions_total),
        peak_rss_pages, epochs.size(),
        static_cast<unsigned long long>(sweep.caps_revoked),
        static_cast<unsigned long long>(mmu.load_barrier_faults));
    return buf;
}

} // namespace crev::core
