#include "core/metrics.h"

#include <cstdio>

#include "trace/metrics_registry.h"

namespace crev::core {

double
RunMetrics::wallSeconds() const
{
    return static_cast<double>(wall_cycles) / kCyclesPerSecond;
}

double
RunMetrics::revocationsPerSecond() const
{
    const double s = wallSeconds();
    return s > 0 ? static_cast<double>(epochs.size()) / s : 0.0;
}

std::size_t
RunMetrics::degradedEpochs() const
{
    std::size_t n = 0;
    for (const auto &e : epochs)
        if (e.recovery.degraded)
            ++n;
    return n;
}

std::string
RunMetrics::summary() const
{
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "wall=%.3fms cpu=%.3fms bus=%llu rss=%zupg epochs=%zu "
        "revoked=%llu faults=%llu blocked=%llu/%.3fms maxq=%lluB "
        "degraded=%zu",
        cyclesToMillis(wall_cycles), cyclesToMillis(cpu_cycles),
        static_cast<unsigned long long>(bus_transactions_total),
        peak_rss_pages, epochs.size(),
        static_cast<unsigned long long>(sweep.caps_revoked),
        static_cast<unsigned long long>(mmu.load_barrier_faults),
        static_cast<unsigned long long>(quarantine.blocked_ops),
        cyclesToMillis(quarantine.blocked_cycles),
        static_cast<unsigned long long>(
            quarantine.max_quarantine_bytes),
        degradedEpochs());
    return buf;
}

void
RunMetrics::exportTo(trace::MetricsRegistry &reg) const
{
    reg.counter("run.wall_cycles", wall_cycles);
    reg.counter("run.cpu_cycles", cpu_cycles);
    reg.counter("mem.bus_transactions", bus_transactions_total);
    reg.counter("mem.peak_rss_pages", peak_rss_pages);
    for (const auto &[name, busy] : thread_busy)
        reg.counter("run.thread_busy." + name, busy);
    std::uint64_t accesses = 0, l1_misses = 0;
    for (const auto &c : core_mem) {
        accesses += c.accesses;
        l1_misses += c.l1_misses;
    }
    reg.counter("mem.accesses", accesses);
    reg.counter("mem.l1_misses", l1_misses);

    reg.counter("revoker.epochs", epochs.size());
    reg.counter("revoker.degraded_epochs", degradedEpochs());
    reg.gauge("revoker.revocations_per_second", revocationsPerSecond());
    for (const auto &e : epochs) {
        reg.sample("revoker.stw_us", cyclesToMicros(e.stw_duration));
        reg.sample("revoker.concurrent_us",
                   cyclesToMicros(e.concurrent_duration));
        reg.sample("revoker.fault_time_us",
                   cyclesToMicros(e.fault_time_total));
        reg.sample("revoker.faults_per_epoch",
                   static_cast<double>(e.fault_count));
        reg.sample("revoker.pages_per_epoch",
                   static_cast<double>(e.pages_swept));
    }

    reg.counter("sweep.pages_swept", sweep.pages_swept);
    reg.counter("sweep.lines_read", sweep.lines_read);
    reg.counter("sweep.caps_seen", sweep.caps_seen);
    reg.counter("sweep.caps_revoked", sweep.caps_revoked);
    reg.counter("sweep.regs_scanned", sweep.regs_scanned);
    reg.counter("sweep.regs_revoked", sweep.regs_revoked);

    reg.counter("prescan.pages_prescanned", prescan.pages_prescanned);
    reg.counter("prescan.candidate_caps", prescan.candidate_caps);
    reg.counter("prescan.validated_hits", prescan.validated_hits);
    reg.counter("prescan.mismatches", prescan.mismatches);

    reg.counter("memo.page_hits", memo.page_hits);
    reg.counter("memo.cand_hits", memo.cand_hits);
    reg.counter("memo.cand_misses", memo.cand_misses);
    reg.counter("memo.stale_pages", memo.stale_pages);
    reg.counter("memo.refreshes", memo.refreshes);
    reg.counter("memo.restamps", memo.restamps);

    reg.counter("alloc.allocs", allocator.allocs);
    reg.counter("alloc.frees", allocator.frees);
    reg.counter("alloc.bytes_allocated", allocator.bytes_allocated_total);
    reg.counter("alloc.bytes_freed", allocator.bytes_freed_total);
    reg.counter("alloc.shards", alloc_shards.size());
    // Per-shard keys are only emitted for sharded heaps: the
    // single-shard reference model keeps its historical key set.
    if (alloc_shards.size() > 1) {
        for (std::size_t i = 0; i < alloc_shards.size(); ++i) {
            const std::string p =
                "alloc.shard" + std::to_string(i) + ".";
            reg.counter(p + "allocs", alloc_shards[i].allocs);
            reg.counter(p + "frees", alloc_shards[i].frees);
            reg.counter(p + "bytes_allocated",
                        alloc_shards[i].bytes_allocated_total);
            reg.counter(p + "bytes_freed",
                        alloc_shards[i].bytes_freed_total);
        }
    }

    reg.counter("quarantine.revocations_triggered",
                quarantine.revocations_triggered);
    reg.counter("quarantine.sum_freed_bytes", quarantine.sum_freed_bytes);
    reg.counter("quarantine.blocked_ops", quarantine.blocked_ops);
    reg.counter("quarantine.blocked_cycles", quarantine.blocked_cycles);
    reg.counter("quarantine.max_quarantine_bytes",
                quarantine.max_quarantine_bytes);
    reg.counter("quarantine.emergency_reclaims",
                quarantine.emergency_reclaims);
    reg.counter("quarantine.handoff_resends",
                quarantine.handoff_resends);
    reg.counter("quarantine.remote_free_sends",
                quarantine.remote_free_sends);
    reg.counter("quarantine.remote_batches", quarantine.remote_batches);
    reg.counter("quarantine.remote_drained", quarantine.remote_drained);
    if (quarantine_shards.size() > 1) {
        for (std::size_t i = 0; i < quarantine_shards.size(); ++i) {
            const std::string p =
                "quarantine.shard" + std::to_string(i) + ".";
            const alloc::QuarantineShardStats &st =
                quarantine_shards[i];
            reg.counter(p + "remote_sends", st.remote_sends);
            reg.counter(p + "remote_batches", st.remote_batches);
            reg.counter(p + "remote_drained", st.remote_drained);
            reg.counter(p + "triggers", st.triggers);
        }
    }
    if (quarantine.revocations_triggered > 0) {
        const double n =
            static_cast<double>(quarantine.revocations_triggered);
        reg.gauge("quarantine.mean_alloc_at_trigger",
                  static_cast<double>(quarantine.sum_alloc_at_trigger) /
                      n);
        reg.gauge("quarantine.mean_quar_at_trigger",
                  static_cast<double>(quarantine.sum_quar_at_trigger) /
                      n);
    }

    reg.counter("vm.demand_faults", mmu.demand_faults);
    reg.counter("vm.load_barrier_faults", mmu.load_barrier_faults);
    reg.counter("vm.tlb_shootdowns", mmu.tlb_shootdowns);
    reg.counter("vm.shootdown_resends", mmu.shootdown_resends);

    reg.counter("watchdog.deadline_misses", recovery.deadline_misses);
    reg.counter("watchdog.nudges", recovery.nudges);
    reg.counter("watchdog.sweepers_reaped", recovery.sweepers_reaped);
    reg.counter("watchdog.sweepers_respawned",
                recovery.sweepers_respawned);
    reg.counter("watchdog.recovery_requests",
                recovery.recovery_requests);
    reg.counter("watchdog.stw_fallbacks", recovery.stw_fallbacks);
    reg.counter("watchdog.emergency_epochs", recovery.emergency_epochs);
    reg.counter("watchdog.stalled_threads", recovery.stalled_threads);

    reg.counter("chaos.sweeper_stalls", faults_injected.sweeper_stalls);
    reg.counter("chaos.sweeper_kills", faults_injected.sweeper_kills);
    reg.counter("chaos.faults_dropped", faults_injected.faults_dropped);
    reg.counter("chaos.faults_duplicated",
                faults_injected.faults_duplicated);
    reg.counter("chaos.stw_delays", faults_injected.stw_delays);
    reg.counter("chaos.shootdown_drops",
                faults_injected.shootdown_drops);
    reg.counter("chaos.shootdown_lates",
                faults_injected.shootdown_lates);
    reg.counter("chaos.core_stalls", faults_injected.core_stalls);
    reg.counter("chaos.summary_corruptions",
                faults_injected.summary_corruptions);
    reg.counter("chaos.quarantine_drops",
                faults_injected.quarantine_drops);
    reg.counter("chaos.quarantine_duplicates",
                faults_injected.quarantine_duplicates);

    reg.counter("audit.summary_repairs", summary_repairs);
    reg.counter("oracle.loads_checked", oracle_loads_checked);
    reg.counter("oracle.violations", oracle_violations);

    // Per-protocol recovery counters and latency histograms. Every
    // protocol's histogram key is emitted even when no ticket closed,
    // so consumers (and the soak CI gate) can rely on the keys.
    for (unsigned i = 0; i < trace::kNumRecoveryProtocols; ++i) {
        const auto p = static_cast<trace::RecoveryProtocol>(i);
        const std::string prefix =
            std::string("recovery.") + trace::recoveryProtocolName(p);
        const revoker::RecoveryProtocolStats &st =
            recovery_protocols[i];
        reg.counter(prefix + ".tickets", st.tickets);
        reg.counter(prefix + ".attempts", st.attempts);
        reg.counter(prefix + ".successes", st.successes);
        reg.counter(prefix + ".retries_exhausted",
                    st.retries_exhausted);
        reg.counter(prefix + ".deadline_expiries",
                    st.deadline_expiries);
        reg.counter(prefix + ".aborts", st.aborts);
        reg.counter(prefix + ".total_latency_cycles",
                    st.total_latency);
        reg.counter(prefix + ".max_latency_cycles", st.max_latency);
        reg.samples(prefix + ".latency_cycles", recovery_latency[i]);
    }
}

} // namespace crev::core
