/**
 * @file
 * The Mutator: the capability-checked programming interface that
 * workload code runs against — CHERI dereference semantics (tag,
 * permission, and bounds checks) over the simulated memory system,
 * plus malloc/free through the temporally safe heap.
 *
 * Offsets are relative to the capability's *address* (cursor), which
 * equals its base for freshly allocated pointers.
 */

#ifndef CREV_CORE_MUTATOR_H_
#define CREV_CORE_MUTATOR_H_

#include <cstdint>

#include "base/rng.h"
#include "base/types.h"
#include "cap/capability.h"
#include "sim/scheduler.h"

namespace crev::core {

class Machine;

/** Per-thread workload context. */
class Mutator
{
  public:
    Mutator(Machine &m, std::uint64_t seed);

    /** Allocate through the configured temporal-safety shim. */
    cap::Capability malloc(std::size_t size);
    /** Free (quarantine) through the shim. */
    void free(const cap::Capability &c);

    /** Capability-checked 64-bit load/store. */
    std::uint64_t load64(const cap::Capability &c, Addr off);
    void store64(const cap::Capability &c, Addr off, std::uint64_t v);

    /** Capability-checked capability load/store (16-byte aligned). */
    cap::Capability loadCap(const cap::Capability &c, Addr off);
    void storeCap(const cap::Capability &c, Addr off,
                  const cap::Capability &v);

    /** Bulk data fill / read (charged per cache line). */
    void fill(const cap::Capability &c, Addr off, std::size_t len,
              std::uint8_t byte);
    void readBytes(const cap::Capability &c, Addr off,
                   std::size_t len);

    /** Pure CPU work. */
    void compute(Cycles cycles);

    /** Virtual time and sleep. */
    Cycles now() const;
    void sleepUntil(Cycles t);
    void sleep(Cycles dt);

    /** Kernel hoard round trip (aio-style pointer retention). */
    std::size_t hoardPut(const cap::Capability &c);
    cap::Capability hoardTake(std::size_t slot);

    /** Deterministic per-thread RNG. */
    Rng &rng() { return rng_; }

    sim::SimThread &thread();
    Machine &machine() { return m_; }

  private:
    /** Validate a dereference; throws vm::CapabilityFault. */
    Addr check(const cap::Capability &c, Addr off, std::size_t len,
               std::uint32_t need_perms);

    Machine &m_;
    Rng rng_;
    sim::SimThread *thread_ = nullptr;

    friend class Machine;
};

} // namespace crev::core

#endif // CREV_CORE_MUTATOR_H_
