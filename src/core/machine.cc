#include "core/machine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread> // hardware_concurrency probe for the lane default

#include "base/host_budget.h"
#include "base/logging.h"
#include "core/mutator.h"
#include "revoker/cheriot_filter.h"
#include "revoker/cherivoke.h"
#include "revoker/cornucopia.h"
#include "revoker/paint_only.h"
#include "revoker/reloaded.h"

namespace crev::core {

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::kBaseline:
        return "baseline";
      case Strategy::kPaintOnly:
        return "paint+sync";
      case Strategy::kCheriVoke:
        return "cherivoke";
      case Strategy::kCornucopia:
        return "cornucopia";
      case Strategy::kReloaded:
        return "reloaded";
      case Strategy::kCheriotFilter:
        return "cheriot-filter";
    }
    return "?";
}

bool
defaultHostFastPaths()
{
    const char *env = std::getenv("CREV_HOST_FAST_PATHS");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

bool
defaultTrace()
{
    const char *env = std::getenv("CREV_TRACE");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

bool
defaultCheck()
{
    const char *env = std::getenv("CREV_CHECK");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

bool
defaultSweepAccel()
{
    const char *env = std::getenv("CREV_SWEEP_ACCEL");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

bool
defaultMemo()
{
    const char *env = std::getenv("CREV_MEMO");
    return env == nullptr || std::strcmp(env, "0") != 0;
}

bool
defaultOracle()
{
    const char *env = std::getenv("CREV_ORACLE");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

unsigned
defaultParCores()
{
    if (const char *env = std::getenv("CREV_PAR_CORES")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        // An explicit operator setting always wins — the host budget
        // arbiter only clamps the probed default below.
        if (end != env && *end == '\0' && v <= 64)
            return static_cast<unsigned>(v);
        warn("ignoring malformed CREV_PAR_CORES=%s", env);
    }
    // lint: threading-ok (host-capacity probe, not a thread)
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned lanes = std::min(hw, 8u);
    // Under a parallel bench run the arbiter hands each cell a lane
    // budget so workers × lanes never oversubscribe the cpuset
    // (base/host_budget.h); a standalone process has no budget
    // configured and keeps the probed default.
    const unsigned cap = base::HostBudget::instance().laneCap();
    if (cap != 0)
        lanes = std::min(lanes, cap);
    return lanes;
}

unsigned
defaultAllocCores()
{
    if (const char *env = std::getenv("CREV_ALLOC_CORES")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 64)
            return static_cast<unsigned>(v);
        warn("ignoring malformed CREV_ALLOC_CORES=%s", env);
    }
    return 1;
}

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg)
{
    if (const std::string err = cfg.faults.validate(); !err.empty())
        throw std::invalid_argument("invalid FaultPlan: " + err);
    if (cfg.trace)
        tracer_ = std::make_unique<trace::Tracer>(
            cfg.trace_buffer_events);
    ms_ = std::make_unique<mem::MemorySystem>(cfg.cores, cfg.l1,
                                              cfg.llc, cfg.latency);
    // Single-core simulated machines keep the serial token engine:
    // there is no cross-core interaction to resolve, so the lockstep
    // machinery would be pure overhead.
    sched_ = std::make_unique<sim::Scheduler>(
        cfg.cores, cfg.costs, cfg.cores > 1 ? cfg.par_cores : 0);
    sched_->setTracer(tracer_.get());
    if (cfg.check)
        checker_ = std::make_unique<check::RaceChecker>();
    // Attach before any spawn so every thread gets its HB edges.
    sched_->setChecker(checker_.get());
    as_ = std::make_unique<vm::AddressSpace>(pm_);
    as_->setChecker(checker_.get());
    // Lane-safe flat lookup structures ride with the lockstep engine
    // (DESIGN.md §14.4); the serial reference engine keeps the
    // original map-based code paths untouched.
    const bool lockstep = sched_->lockstep();
    pm_.setDenseIndex(lockstep);
    as_->setFastIndex(lockstep);
    ms_->setFastIndex(lockstep);
    mmu_ = std::make_unique<vm::Mmu>(pm_, *ms_, *as_, sched_->costs());
    mmu_->setHostFastPaths(cfg.host_fast_paths);
    mmu_->setFastTlb(lockstep);
    mmu_->setTracer(tracer_.get());
    kernel_ = std::make_unique<kern::Kernel>(*mmu_, sched_->costs());
    kernel_->setFastReap(lockstep);
    kernel_->epoch().setChecker(checker_.get());

    if (cfg.faults.enabled) {
        injector_ = std::make_unique<sim::FaultInjector>(cfg.faults);
        injector_->setTracer(tracer_.get());
        if (cfg.faults.mem_spike_period > 0)
            mmu_->setAccessPenaltyHook([this](sim::SimThread &t) {
                return injector_->memAccessPenalty(t.now());
            });
        // Core stalls are drawn at yield points; the hook only fires
        // for armed nonzero probabilities, so plans without the domain
        // replay their exact decision streams.
        sched_->setStallHook([this](sim::SimThread &t) {
            return injector_->coreStall(t);
        });
        mmu_->setFaultInjector(injector_.get());
    }

    if (cfg.faults.enabled || cfg.watchdog.enabled) {
        recovery_ = std::make_unique<revoker::RecoveryManager>();
        recovery_->setTracer(tracer_.get());
        // The epoch ladder keeps PR-1 timings: its backoff envelope
        // comes from the watchdog policy, and its retry budget is
        // effectively unbounded (the ladder never gives up — safety
        // rungs 3/4 always complete the epoch by fiat).
        revoker::RecoveryPolicy ladder;
        ladder.max_retries = ~0u;
        ladder.deadline = 0;
        ladder.backoff_base = cfg.watchdog.backoff_base;
        ladder.max_backoff = cfg.watchdog.max_backoff;
        recovery_->setPolicy(trace::RecoveryProtocol::kEpochLadder,
                             ladder);
        mmu_->setRecoveryManager(recovery_.get());
    }

    if (cfg.oracle) {
        oracle_ = std::make_unique<check::SafetyOracle>();
        mmu_->setSafetyOracle(oracle_.get());
    }

    const unsigned alloc_shards = std::max(1u, cfg.alloc_cores);
    if (cfg.strategy == Strategy::kBaseline) {
        snm_ = std::make_unique<alloc::SnmallocLite>(*kernel_, *mmu_,
                                                     alloc_shards);
        snm_->setFastIndex(lockstep);
        shim_ = std::make_unique<alloc::QuarantineShim>(
            *snm_, *kernel_, nullptr, nullptr, cfg.policy);
        shim_->setTracer(tracer_.get());
        shim_->setChecker(checker_.get());
        return;
    }

    bitmap_ = std::make_unique<revoker::RevocationBitmap>(*mmu_);
    bitmap_->setTracer(tracer_.get());

    revoker::RevokerOptions opts;
    opts.clean_page_detection = cfg.reloaded_clean_detect;
    opts.always_trap_clean_pages = cfg.always_trap_clean;
    opts.background_sweepers = cfg.background_sweepers;
    opts.audit = cfg.audit;
    opts.host_fast_paths = cfg.host_fast_paths;
    opts.sweep_accel = cfg.sweep_accel;
    opts.memo = cfg.memo;
    opts.injector = injector_.get();
    opts.tracer = tracer_.get();

    switch (cfg.strategy) {
      case Strategy::kPaintOnly:
        revoker_ = std::make_unique<revoker::PaintOnlyRevoker>(
            *sched_, *mmu_, *kernel_, *bitmap_, opts);
        break;
      case Strategy::kCheriVoke:
        revoker_ = std::make_unique<revoker::CheriVokeRevoker>(
            *sched_, *mmu_, *kernel_, *bitmap_, opts);
        break;
      case Strategy::kCornucopia:
        revoker_ = std::make_unique<revoker::CornucopiaRevoker>(
            *sched_, *mmu_, *kernel_, *bitmap_, opts);
        break;
      case Strategy::kReloaded:
        revoker_ = std::make_unique<revoker::ReloadedRevoker>(
            *sched_, *mmu_, *kernel_, *bitmap_, opts);
        break;
      case Strategy::kCheriotFilter:
        revoker_ = std::make_unique<revoker::CheriotFilterRevoker>(
            *sched_, *mmu_, *kernel_, *bitmap_, opts);
        break;
      default:
        panic("unreachable strategy");
    }

    // Wire the load barrier to Reloaded's self-healing handler, or
    // the inline load filter for the CHERIoT-style strategy.
    if (cfg.strategy == Strategy::kReloaded) {
        auto *rel = static_cast<revoker::ReloadedRevoker *>(
            revoker_.get());
        mmu_->setLoadFaultHandler(
            [rel](sim::SimThread &t, Addr va) {
                rel->handleLoadFault(t, va);
            });
    } else if (cfg.strategy == Strategy::kCheriotFilter) {
        auto *chf = static_cast<revoker::CheriotFilterRevoker *>(
            revoker_.get());
        mmu_->setLoadFilter(
            [chf](sim::SimThread &t, const cap::Capability &c) {
                return chf->filterLoad(t, c);
            });
    }

    // Kernel hooks: shadow paints for mapping quarantine (§6.2) and
    // munmap exclusion during sweeps (§4.3).
    kernel_->setShadowHooks(
        [this](sim::SimThread &t, Addr base, Addr len) {
            bitmap_->paint(t, base, len);
        },
        [this](sim::SimThread &t, Addr base, Addr len) {
            bitmap_->clear(t, base, len);
            revoker_->onDequarantine(base, len);
        });
    kernel_->setQuiesceHook([this](sim::SimThread &t) {
        // Loop: waitForEpochCounter(e + 1) can return after the daemon
        // has already opened the NEXT epoch (counter odd again), and a
        // munmap proceeding then would violate the §4.3 exclusion.
        for (;;) {
            const std::uint64_t e = kernel_->epoch().value();
            if ((e & 1) == 0)
                return;
            revoker_->waitForEpochCounter(t, e + 1);
            if (t.scheduler().shuttingDown())
                return;
        }
    });

    // The oracle is never attached for paint-only: its epochs complete
    // without revoking, so committing the audit set would flag legal
    // loads of merely-quarantined objects.
    if (oracle_ && cfg.strategy != Strategy::kPaintOnly)
        revoker_->setOracle(oracle_.get());

    auditor_ = std::make_unique<revoker::Auditor>(*sched_, *mmu_,
                                                  *kernel_, *revoker_);
    auditor_->setFaultInjector(injector_.get());
    auditor_->setRecoveryManager(recovery_.get());
    if (cfg.audit && cfg.strategy != Strategy::kPaintOnly)
        revoker_->setAuditHook([this](sim::SimThread &self) {
            auditor_->check(&self);
        });

    snm_ = std::make_unique<alloc::SnmallocLite>(*kernel_, *mmu_,
                                                 alloc_shards);
    snm_->setFastIndex(lockstep);
    shim_ = std::make_unique<alloc::QuarantineShim>(
        *snm_, *kernel_, revoker_.get(), bitmap_.get(), cfg.policy);
    shim_->setTracer(tracer_.get());
    shim_->setChecker(checker_.get());
    shim_->setFaultInjector(injector_.get());
    shim_->setRecoveryManager(recovery_.get());

    // The revocation service daemon(s).
    sim::SimThread *rev_thread = sched_->spawn(
        "revoker", cfg.revoker_core_mask,
        [this](sim::SimThread &self) { revoker_->daemonBody(self); },
        /*daemon=*/true);
    sched_->setQuantumScale(*rev_thread, cfg.revoker_quantum_scale);

    if (cfg.strategy == Strategy::kReloaded &&
        cfg.background_sweepers > 1) {
        auto *rel = static_cast<revoker::ReloadedRevoker *>(
            revoker_.get());
        for (unsigned i = 1; i < cfg.background_sweepers; ++i) {
            sim::SimThread *helper = sched_->spawn(
                "revoker-helper" + std::to_string(i),
                cfg.revoker_core_mask,
                [rel](sim::SimThread &self) { rel->helperBody(self); },
                /*daemon=*/true);
            sched_->setQuantumScale(*helper,
                                    cfg.revoker_quantum_scale);
            rel->registerSweeper(helper);
        }
    }

    // The epoch watchdog rides along whenever faults can wedge an
    // epoch (or when explicitly enabled); without it, existing runs
    // keep their exact thread set and scheduling order.
    if (cfg.watchdog.enabled || cfg.faults.enabled) {
        watchdog_ = std::make_unique<revoker::EpochWatchdog>(
            *sched_, *revoker_, *mmu_, *kernel_, cfg.watchdog);
        watchdog_->setTracer(tracer_.get());
        watchdog_->setRecoveryManager(recovery_.get());
        if (cfg.strategy == Strategy::kReloaded) {
            auto *rel = static_cast<revoker::ReloadedRevoker *>(
                revoker_.get());
            watchdog_->setRespawnFn(
                [this, rel](sim::SimThread &) -> sim::SimThread * {
                    sim::SimThread *nt = sched_->spawn(
                        "revoker-helper-r" +
                            std::to_string(respawn_count_++),
                        cfg_.revoker_core_mask,
                        [rel](sim::SimThread &self) {
                            rel->helperBody(self);
                        },
                        /*daemon=*/true);
                    sched_->setQuantumScale(
                        *nt, cfg_.revoker_quantum_scale);
                    rel->registerSweeper(nt);
                    return nt;
                });
        }
        sim::SimThread *wd = sched_->spawn(
            "watchdog", cfg.revoker_core_mask,
            [this](sim::SimThread &self) {
                watchdog_->daemonBody(self);
            },
            /*daemon=*/true);
        sched_->setQuantumScale(*wd, cfg.revoker_quantum_scale);
    }
}

Machine::~Machine() = default;

sim::SimThread *
Machine::spawnMutator(std::string name, std::uint32_t core_mask,
                      std::function<void(Mutator &)> body)
{
    mutators_.push_back(
        std::make_unique<Mutator>(*this, cfg_.seed + mutators_.size()));
    Mutator *ctx = mutators_.back().get();
    sim::SimThread *t = sched_->spawn(
        std::move(name), core_mask,
        [ctx, body = std::move(body)](sim::SimThread &self) {
            ctx->thread_ = &self;
            body(*ctx);
        });
    ctx->thread_ = t;
    return t;
}

void
Machine::run()
{
    sched_->run();
}

void
Machine::audit()
{
    if (auditor_)
        auditor_->check();
}

RunMetrics
Machine::metrics() const
{
    RunMetrics m;
    m.wall_cycles = sched_->maxClock();
    for (const auto &t : sched_->threads()) {
        m.thread_busy[t->name()] = t->busyCycles();
        m.cpu_cycles += t->busyCycles();
    }
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        m.core_mem.push_back(ms_->counters(c));
        m.bus_transactions_total += ms_->counters(c).busTransactions();
    }
    m.peak_rss_pages = pm_.peakFrames();
    if (revoker_) {
        m.epochs = revoker_->timings();
        m.sweep = revoker_->sweepStats();
        m.prescan = revoker_->prescanStats();
        m.memo = revoker_->memoStats();
    }
    m.quarantine = shim_->stats();
    m.allocator = snm_->stats();
    for (unsigned s = 0; s < snm_->shardCount(); ++s)
        m.alloc_shards.push_back(snm_->shardStats(s));
    for (unsigned s = 0; s < shim_->shardCount(); ++s)
        m.quarantine_shards.push_back(shim_->shardStats(s));
    m.mmu = mmu_->stats();
    if (watchdog_)
        m.recovery = watchdog_->stats();
    if (injector_)
        m.faults_injected = injector_->counters();
    if (recovery_) {
        for (unsigned i = 0; i < trace::kNumRecoveryProtocols; ++i) {
            const auto p = static_cast<trace::RecoveryProtocol>(i);
            m.recovery_protocols[i] = recovery_->stats(p);
            m.recovery_latency[i] = recovery_->latencies(p);
        }
    }
    if (auditor_)
        m.summary_repairs = auditor_->summaryRepairs();
    if (oracle_) {
        m.oracle_loads_checked = oracle_->loadsChecked();
        m.oracle_violations = oracle_->violations().size() +
                              oracle_->suppressed();
    }
    return m;
}

std::string
Machine::checkReportJson() const
{
    if (!checker_)
        return "";
    return checker_->reportJson();
}

std::string
Machine::oracleReportJson() const
{
    if (!oracle_)
        return "";
    return oracle_->reportJson();
}

std::string
Machine::traceJson() const
{
    if (!tracer_)
        return "";
    std::vector<trace::ThreadInfo> infos;
    for (const auto &t : sched_->threads())
        infos.push_back({t->id(), t->name()});
    return trace::chromeJson(*tracer_, infos);
}

std::string
Machine::traceSummary() const
{
    if (!tracer_)
        return "";
    return trace::phaseSummaryText(trace::summarize(*tracer_));
}

} // namespace crev::core
