#include "core/mutator.h"

#include <algorithm>

#include "base/logging.h"
#include "core/machine.h"
#include "vm/fault.h"

namespace crev::core {

Mutator::Mutator(Machine &m, std::uint64_t seed) : m_(m), rng_(seed) {}

sim::SimThread &
Mutator::thread()
{
    CREV_ASSERT(thread_ != nullptr);
    return *thread_;
}

Addr
Mutator::check(const cap::Capability &c, Addr off, std::size_t len,
               std::uint32_t need_perms)
{
    thread().accrue(1);
    if (!c.tag)
        throw vm::CapabilityFault(vm::CapabilityFault::Kind::kTag,
                                  c.address + off);
    if (!c.hasPerms(need_perms))
        throw vm::CapabilityFault(
            vm::CapabilityFault::Kind::kPermission, c.address + off);
    const Addr va = c.address + off;
    if (va < c.base || va + len > c.top || va + len < va)
        throw vm::CapabilityFault(vm::CapabilityFault::Kind::kBounds,
                                  va);
    return va;
}

cap::Capability
Mutator::malloc(std::size_t size)
{
    return m_.heap().malloc(thread(), size);
}

void
Mutator::free(const cap::Capability &c)
{
    m_.heap().free(thread(), c);
}

std::uint64_t
Mutator::load64(const cap::Capability &c, Addr off)
{
    const Addr va = check(c, off, 8, cap::kPermLoad);
    return m_.mmu().loadU64(thread(), va);
}

void
Mutator::store64(const cap::Capability &c, Addr off, std::uint64_t v)
{
    const Addr va = check(c, off, 8, cap::kPermStore);
    m_.mmu().storeU64(thread(), va, v);
}

cap::Capability
Mutator::loadCap(const cap::Capability &c, Addr off)
{
    const Addr va = check(c, off, kGranuleSize, cap::kPermLoadCap);
    CREV_ASSERT(va % kGranuleSize == 0);
    return m_.mmu().loadCap(thread(), va);
}

void
Mutator::storeCap(const cap::Capability &c, Addr off,
                  const cap::Capability &v)
{
    const Addr va = check(c, off, kGranuleSize, cap::kPermStoreCap);
    CREV_ASSERT(va % kGranuleSize == 0);
    m_.mmu().storeCap(thread(), va, v);
}

void
Mutator::fill(const cap::Capability &c, Addr off, std::size_t len,
              std::uint8_t byte)
{
    const Addr va = check(c, off, len, cap::kPermStore);
    std::uint8_t buf[256];
    std::fill(std::begin(buf), std::end(buf), byte);
    Addr p = va;
    std::size_t remaining = len;
    while (remaining > 0) {
        const std::size_t n = std::min(remaining, sizeof(buf));
        m_.mmu().storeData(thread(), p, buf, n);
        p += n;
        remaining -= n;
    }
}

void
Mutator::readBytes(const cap::Capability &c, Addr off, std::size_t len)
{
    const Addr va = check(c, off, len, cap::kPermLoad);
    std::uint8_t buf[256];
    Addr p = va;
    std::size_t remaining = len;
    while (remaining > 0) {
        const std::size_t n = std::min(remaining, sizeof(buf));
        m_.mmu().loadData(thread(), p, buf, n);
        p += n;
        remaining -= n;
    }
}

void
Mutator::compute(Cycles cycles)
{
    thread().accrue(cycles);
}

Cycles
Mutator::now() const
{
    CREV_ASSERT(thread_ != nullptr);
    return thread_->now();
}

void
Mutator::sleepUntil(Cycles t)
{
    thread().sleepUntil(t);
}

void
Mutator::sleep(Cycles dt)
{
    thread().sleep(dt);
}

std::size_t
Mutator::hoardPut(const cap::Capability &c)
{
    thread().accrue(m_.scheduler().costs().syscall);
    return m_.kernel().hoard().put(thread(), c);
}

cap::Capability
Mutator::hoardTake(std::size_t slot)
{
    thread().accrue(m_.scheduler().costs().syscall);
    return m_.kernel().hoard().take(thread(), slot);
}

} // namespace crev::core
