/**
 * @file
 * Machine configuration: the one struct an experiment fills in.
 */

#ifndef CREV_CORE_CONFIG_H_
#define CREV_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "alloc/quarantine.h"
#include "mem/cache.h"
#include "mem/memory_system.h"
#include "revoker/watchdog.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"

namespace crev::core {

/** Which temporal-safety strategy the machine runs (paper §5). */
enum class Strategy {
    kBaseline,   //!< spatially-safe CHERI binary, no temporal safety
    kPaintOnly,  //!< quarantine machinery without revocation passes
    kCheriVoke,  //!< fully stop-the-world sweeps
    kCornucopia, //!< concurrent + STW re-sweep (store barrier)
    kReloaded,   //!< load barrier (this paper)
    /** CHERIoT-style inline load filter (paper §6.3): every tagged
     *  capability load probes the revocation bitmap and strips
     *  revoked values on the way into the register file. */
    kCheriotFilter,
};

/** Strategy name for table output. */
const char *strategyName(Strategy s);

/**
 * Default for MachineConfig::host_fast_paths: true unless the
 * CREV_HOST_FAST_PATHS environment variable is set to "0" (host-side
 * A/B benching and debugging; simulated results are identical either
 * way).
 */
bool defaultHostFastPaths();

/**
 * Default for MachineConfig::trace: false unless the CREV_TRACE
 * environment variable is set to something other than "0". Tracing
 * charges zero simulated cycles, so results are identical either way;
 * only host memory/time is spent.
 */
bool defaultTrace();

/**
 * Default for MachineConfig::check: false unless the CREV_CHECK
 * environment variable is set to something other than "0". The race
 * checker is an off-clock observer like the tracer: RunMetrics are
 * bit-identical with checking on or off (tests/check_test.cpp).
 */
bool defaultCheck();

/**
 * Default for MachineConfig::sweep_accel: true unless the
 * CREV_SWEEP_ACCEL environment variable is set to "0". Like
 * host_fast_paths this is a pure host-side lever: the cap-dirty page
 * index and the speculative pre-scan pipeline change which host code
 * selects and decodes sweep work, never the simulated charges, so
 * RunMetrics are byte-identical either way.
 */
bool defaultSweepAccel();

/**
 * Default for MachineConfig::memo: true unless the CREV_MEMO
 * environment variable is set to "0". The cross-epoch decode memo
 * (DESIGN.md §17.2) is a pure host-side cache layered on the pre-scan
 * pipeline's bits-validation discipline: reused decodes are validated
 * against the live capability bits at the virtual instant of use, so
 * RunMetrics are byte-identical with the memo on or off.
 */
bool defaultMemo();

/**
 * Default for MachineConfig::oracle: false unless the CREV_ORACLE
 * environment variable is set to something other than "0". The
 * temporal-safety oracle is an off-clock observer like the race
 * checker: RunMetrics are bit-identical with it on or off.
 */
bool defaultOracle();

/**
 * Default for MachineConfig::par_cores: the CREV_PAR_CORES
 * environment variable when set, otherwise the host's hardware
 * concurrency clamped to [1, 8] — i.e. the lockstep engine is on by
 * default. 0 selects the serial token engine (the reference
 * implementation); RunMetrics are bit-identical between the engines
 * (tests/determinism_test.cpp), so this is a pure host-side lever
 * like host_fast_paths.
 */
unsigned defaultParCores();

/**
 * Default for MachineConfig::alloc_cores: the CREV_ALLOC_CORES
 * environment variable when set, otherwise 1 — the single-heap
 * reference model. Values > 1 shard the allocator and quarantine
 * into per-core heaps with message-passing remote free (DESIGN.md
 * §15); this is a *simulated* structural change (quarantine growth
 * and paint/sweep dynamics differ by design), but for a fixed value
 * RunMetrics stay bit-identical between the serial and lockstep
 * engines (tests/determinism_test.cpp).
 */
unsigned defaultAllocCores();

/** All strategies in evaluation order. */
constexpr Strategy kAllStrategies[] = {
    Strategy::kBaseline,   Strategy::kPaintOnly,
    Strategy::kCheriVoke,  Strategy::kCornucopia,
    Strategy::kReloaded,   Strategy::kCheriotFilter};

/** Full machine configuration. */
struct MachineConfig
{
    Strategy strategy = Strategy::kReloaded;

    unsigned cores = 4; //!< Morello has four cache-coherent cores
    sim::CostModel costs;
    mem::CacheConfig l1{32 * 1024, 4};
    mem::CacheConfig llc{1024 * 1024, 8};
    mem::MemLatency latency;

    alloc::QuarantinePolicy policy;

    /** Cores the background revoker may run on (paper regime: pinned
     *  to core 2 while applications own core 3). */
    std::uint32_t revoker_core_mask = 1u << 2;

    /** Run the whole-machine invariant audit after every epoch. */
    bool audit = false;

    /** Host-side memoisation fast paths (translation/frame caches,
     *  packed tag-nibble sweeps). Pure host optimisation: results are
     *  byte-identical either way (tests/determinism_test.cpp). */
    bool host_fast_paths = defaultHostFastPaths();

    /** Hierarchical sweep acceleration (DESIGN.md §12): page-index
     *  driven sweep candidate selection plus the speculative host
     *  pre-scan pipeline. Pure host optimisation, like
     *  host_fast_paths: results are byte-identical either way. */
    bool sweep_accel = defaultSweepAccel();

    /** Cross-epoch decode memoisation (DESIGN.md §17.2): pages whose
     *  store generation is unchanged since their last swept epoch
     *  reuse the cached decode/classification, validated against the
     *  live capability bits exactly like the pre-scan pipeline. Pure
     *  host optimisation: results are byte-identical either way. Only
     *  effective when host_fast_paths is also on. */
    bool memo = defaultMemo();

    /** Lockstep virtual-time engine (DESIGN.md §14): host lanes for
     *  intra-cell simulation. 0 = serial token engine (the reference);
     *  >= 1 = lockstep engine with that many host lanes and its
     *  lane-safe flat lookup structures. Multi-core simulated machines
     *  default to the lockstep engine; RunMetrics are bit-identical
     *  between the engines. */
    unsigned par_cores = defaultParCores();

    /** Per-core allocator sharding (DESIGN.md §15): number of
     *  per-core heap shards. 1 = the single globally-locked heap (the
     *  reference model); N > 1 gives each simulated core its own free
     *  lists, slab/arena cursors, and quarantine double-buffer, with
     *  cross-core frees routed as batched remote-dealloc messages to
     *  the owning shard. All shards feed the one revocation epoch. */
    unsigned alloc_cores = defaultAllocCores();

    /** Virtual-time event tracing (DESIGN.md §10). Zero simulated
     *  cost: RunMetrics are bit-identical with tracing on or off. */
    bool trace = defaultTrace();

    /** Simulation-aware race detection (DESIGN.md §11): lockset and
     *  happens-before checking over the declared shared-state domains.
     *  Zero simulated cost, like tracing. */
    bool check = defaultCheck();
    /** Temporal-safety oracle (DESIGN.md §13): records revoked-object
     *  generations and asserts no revoked capability ever loads into
     *  a register file after its epoch completed. Zero simulated
     *  cost, like the race checker. */
    bool oracle = defaultOracle();
    /** Per-thread trace ring capacity, in events. */
    std::size_t trace_buffer_events = 1u << 16;

    /** Reloaded: clear cap_ever when a sweep finds a page clean. */
    bool reloaded_clean_detect = true;
    /** §7.6 ablation: always-trap disposition for clean pages. */
    bool always_trap_clean = false;
    /** §7.1: background sweeper thread count (Reloaded). */
    unsigned background_sweepers = 1;
    /** §7.7: preemption-quantum scale for revoker threads. */
    double revoker_quantum_scale = 1.0;

    /** Chaos-campaign fault plan (disabled by default: no injector is
     *  even constructed, so existing runs are bit-identical). */
    sim::FaultPlan faults;
    /** Epoch watchdog tuning; the watchdog daemon is spawned when
     *  this is enabled or fault injection is on. */
    revoker::WatchdogPolicy watchdog;

    std::uint64_t seed = 1;
};

} // namespace crev::core

#endif // CREV_CORE_CONFIG_H_
