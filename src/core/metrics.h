/**
 * @file
 * Run-level metrics collected from one Machine execution — the four
 * key overheads of CHERIvoke-style revocation (paper §5): wall-clock
 * time, CPU time, bus accesses, and memory occupancy — plus the
 * revocation phase timings behind figs. 7 and 9 and the rate
 * statistics behind Table 2.
 */

#ifndef CREV_CORE_METRICS_H_
#define CREV_CORE_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "alloc/quarantine.h"
#include "base/types.h"
#include "mem/memory_system.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"
#include "revoker/sweep.h"
#include "revoker/watchdog.h"
#include "sim/fault_injector.h"
#include "stats/summary.h"
#include "vm/mmu.h"

namespace crev::trace {
class MetricsRegistry;
}

namespace crev::core {

/** Everything a bench needs from a finished run. */
struct RunMetrics
{
    /** Largest virtual clock reached (wall-clock proxy). */
    Cycles wall_cycles = 0;
    /** Busy cycles per thread name. */
    std::map<std::string, Cycles> thread_busy;
    /** Sum of all threads' busy cycles (total CPU time). */
    Cycles cpu_cycles = 0;

    /** Per-core memory counters; bus transactions are the DRAM-traffic
     *  proxy. */
    std::vector<mem::MemCounters> core_mem;
    std::uint64_t bus_transactions_total = 0;

    /** Peak resident frames (RSS proxy, in pages). */
    std::size_t peak_rss_pages = 0;

    /** Revocation epoch timings (empty for baseline). */
    std::vector<revoker::EpochTiming> epochs;
    revoker::SweepStats sweep;
    /** Host-side pre-scan pipeline counters (not a simulated
     *  observable: all-zero with sweep acceleration off, and excluded
     *  from the determinism fingerprint). */
    revoker::PrescanStats prescan;
    /** Host-side cross-epoch decode-memo counters (DESIGN.md §17.2):
     *  like prescan, never a simulated observable — all-zero with the
     *  memo off and excluded from the determinism fingerprint. */
    revoker::MemoStats memo;
    alloc::QuarantineStats quarantine;
    alloc::AllocStats allocator;
    /** Per-shard allocator activity ("alloc.shardN.*"); size 1 in the
     *  single-heap reference model. */
    std::vector<alloc::AllocStats> alloc_shards;
    /** Per-shard quarantine/remote-free activity
     *  ("quarantine.shardN.*"). */
    std::vector<alloc::QuarantineShardStats> quarantine_shards;
    vm::MmuStats mmu;

    /** Watchdog recovery activity (all-zero when none was spawned). */
    revoker::RecoveryStats recovery;
    /** Faults actually injected (all-zero without a fault plan). */
    sim::FaultCounters faults_injected;

    /** Per-protocol RecoveryManager counters (all-zero when no
     *  manager was built). Indexed by trace::RecoveryProtocol. */
    std::array<revoker::RecoveryProtocolStats,
               trace::kNumRecoveryProtocols>
        recovery_protocols{};
    /** Per-protocol recovery latency samples (open→close cycles). */
    std::array<stats::Samples, trace::kNumRecoveryProtocols>
        recovery_latency;
    /** Summary corruptions detected and repaired by the Auditor. */
    std::uint64_t summary_repairs = 0;
    /** Temporal-safety oracle totals (zero when the oracle is off). */
    std::uint64_t oracle_loads_checked = 0;
    std::uint64_t oracle_violations = 0;

    /** Epochs that needed an emergency STW sweep to complete. */
    std::size_t degradedEpochs() const;

    /** Simulated wall-clock seconds. */
    double wallSeconds() const;
    /** Revocations per simulated second. */
    double revocationsPerSecond() const;

    /** One-line human-readable summary. */
    std::string summary() const;

    /**
     * Export everything into a MetricsRegistry under dotted names
     * ("run.*", "revoker.*", "sweep.*", "alloc.*", "vm.*",
     * "watchdog.*", "chaos.*"), including per-epoch phase histograms
     * in microseconds. The registry's toJson() is the single
     * machine-readable artifact every bench emits.
     */
    void exportTo(trace::MetricsRegistry &reg) const;
};

} // namespace crev::core

#endif // CREV_CORE_METRICS_H_
