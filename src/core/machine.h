/**
 * @file
 * The Machine: one simulated CHERI system — cores, tagged memory,
 * MMU, kernel, revoker, and temporally safe heap — assembled from a
 * MachineConfig. This is the library's primary entry point.
 *
 * Typical use:
 *
 *   core::MachineConfig cfg;
 *   cfg.strategy = core::Strategy::kReloaded;
 *   core::Machine m(cfg);
 *   m.spawnMutator("app", 1u << 3, [](core::Mutator &ctx) {
 *       auto p = ctx.malloc(64);
 *       ctx.store64(p, 0, 42);
 *       ctx.free(p);
 *   });
 *   m.run();
 *   core::RunMetrics metrics = m.metrics();
 */

#ifndef CREV_CORE_MACHINE_H_
#define CREV_CORE_MACHINE_H_

#include <functional>
#include <memory>
#include <string>

#include "alloc/quarantine.h"
#include "alloc/snmalloc_lite.h"
#include "check/race_checker.h"
#include "check/safety_oracle.h"
#include "core/config.h"
#include "core/metrics.h"
#include "kern/kernel.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"
#include "revoker/auditor.h"
#include "revoker/bitmap.h"
#include "revoker/recovery.h"
#include "revoker/revoker.h"
#include "revoker/watchdog.h"
#include "sim/fault_injector.h"
#include "sim/scheduler.h"
#include "trace/trace.h"
#include "trace/trace_export.h"
#include "vm/address_space.h"
#include "vm/mmu.h"

namespace crev::core {

class Mutator;

/** One simulated machine/process under a chosen strategy. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Spawn an application thread pinned to @p core_mask running
     * @p body. Must be called before run() (workloads may spawn
     * further threads from inside a running body).
     */
    sim::SimThread *spawnMutator(std::string name,
                                 std::uint32_t core_mask,
                                 std::function<void(Mutator &)> body);

    /** Execute until all mutators finish. */
    void run();

    /** Collect metrics (valid after run()). */
    RunMetrics metrics() const;

    /** Run the invariant audit now; panics on violation. */
    void audit();

    const MachineConfig &config() const { return cfg_; }

    // Component access (tests, advanced use).
    sim::Scheduler &scheduler() { return *sched_; }
    vm::Mmu &mmu() { return *mmu_; }
    vm::AddressSpace &addressSpace() { return *as_; }
    kern::Kernel &kernel() { return *kernel_; }
    alloc::QuarantineShim &heap() { return *shim_; }
    alloc::SnmallocLite &allocator() { return *snm_; }
    revoker::Revoker *revokerOrNull() { return revoker_.get(); }
    mem::PhysMem &physMem() { return pm_; }
    mem::MemorySystem &memorySystem() { return *ms_; }
    revoker::RevocationBitmap *bitmapOrNull() { return bitmap_.get(); }
    sim::FaultInjector *faultInjectorOrNull() { return injector_.get(); }
    revoker::EpochWatchdog *watchdogOrNull() { return watchdog_.get(); }
    trace::Tracer *tracerOrNull() { return tracer_.get(); }
    check::RaceChecker *checkerOrNull() { return checker_.get(); }
    check::SafetyOracle *oracleOrNull() { return oracle_.get(); }
    revoker::RecoveryManager *recoveryOrNull()
    {
        return recovery_.get();
    }
    revoker::Auditor *auditorOrNull() { return auditor_.get(); }

    /** Race-checker report JSON; empty if checking was off. Written
     *  next to the Chrome trace by the bench tooling. */
    std::string checkReportJson() const;

    /** Safety-oracle report JSON; empty if the oracle was off. */
    std::string oracleReportJson() const;

    /** Chrome trace-event JSON of the run; empty if tracing was off.
     *  Byte-identical across same-seed runs. */
    std::string traceJson() const;
    /** Fig. 9-style phase summary text derived from the trace; empty
     *  if tracing was off. */
    std::string traceSummary() const;

  private:
    MachineConfig cfg_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<check::RaceChecker> checker_;
    std::unique_ptr<check::SafetyOracle> oracle_;
    std::unique_ptr<revoker::RecoveryManager> recovery_;
    mem::PhysMem pm_;
    std::unique_ptr<mem::MemorySystem> ms_;
    std::unique_ptr<sim::Scheduler> sched_;
    std::unique_ptr<vm::AddressSpace> as_;
    std::unique_ptr<vm::Mmu> mmu_;
    std::unique_ptr<kern::Kernel> kernel_;
    std::unique_ptr<revoker::RevocationBitmap> bitmap_;
    std::unique_ptr<sim::FaultInjector> injector_;
    std::unique_ptr<revoker::Revoker> revoker_;
    std::unique_ptr<revoker::EpochWatchdog> watchdog_;
    std::unique_ptr<revoker::Auditor> auditor_;
    unsigned respawn_count_ = 0;
    std::unique_ptr<alloc::SnmallocLite> snm_;
    std::unique_ptr<alloc::QuarantineShim> shim_;
    std::vector<std::unique_ptr<Mutator>> mutators_;
};

} // namespace crev::core

#endif // CREV_CORE_MACHINE_H_
