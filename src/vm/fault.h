/**
 * @file
 * Faults surfaced to simulated user code as C++ exceptions.
 *
 * Guard-page touches and capability violations terminate the simulated
 * instruction stream the way a signal would; example programs catch
 * them to demonstrate that use-after-reallocation is fail-stop.
 */

#ifndef CREV_VM_FAULT_H_
#define CREV_VM_FAULT_H_

#include <cstdio>
#include <stdexcept>
#include <string>

#include "base/types.h"
#include "vm/pte.h"

namespace crev::vm {

/** An unrecoverable memory fault (SIGSEGV analogue). */
class MemoryFault : public std::runtime_error
{
  public:
    MemoryFault(FaultKind kind, Addr va)
        : std::runtime_error("memory fault at va 0x" + hex(va)),
          kind_(kind), va_(va)
    {
    }

    FaultKind kind() const { return kind_; }
    Addr va() const { return va_; }

  private:
    static std::string
    hex(Addr a)
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(a));
        return buf;
    }

    FaultKind kind_;
    Addr va_;
};

/** A capability violation (tag clear, bounds, permissions). */
class CapabilityFault : public std::runtime_error
{
  public:
    enum class Kind { kTag, kBounds, kPermission };

    CapabilityFault(Kind kind, Addr va)
        : std::runtime_error(describe(kind)), kind_(kind), va_(va)
    {
    }

    Kind kind() const { return kind_; }
    Addr va() const { return va_; }

  private:
    static const char *
    describe(Kind k)
    {
        switch (k) {
          case Kind::kTag:
            return "capability fault: tag cleared";
          case Kind::kBounds:
            return "capability fault: out of bounds";
          case Kind::kPermission:
            return "capability fault: missing permission";
        }
        return "capability fault";
    }

    Kind kind_;
    Addr va_;
};

} // namespace crev::vm

#endif // CREV_VM_FAULT_H_
