/**
 * @file
 * Page table entry, including the experimental CHERI bits.
 *
 * Two capability-tracking facilities coexist (paper §4.1, §4.2):
 *
 *  - `clg` is the per-PTE capability load generation bit, compared by
 *    the MMU against the per-core generation register on every tagged
 *    capability load; a mismatch traps (Reloaded's load barrier).
 *  - `cap_dirty` is the store-side tracker: set by hardware when a
 *    tagged capability is stored to the page. Cornucopia's two phases
 *    consume it; Reloaded only uses it to skip the *contents* of
 *    capability-clean pages.
 *  - `cap_ever` is the sticky "page has held capabilities" bit: our
 *    Cornucopia re-implementation never clears it (paper §4.5);
 *    Reloaded may (it detects pages becoming clean).
 *  - `cap_load_trap` is the §7.6 "always trap on capability load"
 *    disposition, an ablation option.
 */

#ifndef CREV_VM_PTE_H_
#define CREV_VM_PTE_H_

#include "base/types.h"

namespace crev::vm {

/** A page table entry. */
struct Pte
{
    Addr pfn = 0;         //!< physical frame (0 = not resident)
    bool valid = false;   //!< resident and translatable
    bool write = true;    //!< user stores permitted
    bool cap_store = true; //!< tagged capability stores permitted
    bool cap_ever = false; //!< has ever contained capabilities
    bool cap_dirty = false; //!< capability stored since last sweep
    unsigned clg = 0;     //!< capability load generation bit (0/1)
    bool cap_load_trap = false; //!< §7.6: all capability loads trap
};

/** Why a translation could not complete. */
enum class FaultKind {
    kNone,
    kNotMapped,     //!< address outside any reservation
    kGuard,         //!< guard page (munmap hole / reservation padding)
    kDemandZero,    //!< first touch of an anonymous page
    kWriteProtect,  //!< store to a read-only page
    kCapStore,      //!< tagged store to a page without cap_store
    kLoadBarrier,   //!< tagged capability load, stale generation
};

} // namespace crev::vm

#endif // CREV_VM_PTE_H_
