#include "vm/address_space.h"

#include "base/logging.h"
#include "cap/compression.h"
#include "check/race_checker.h"

namespace crev::vm {

namespace {

// Flat-window extents (DESIGN.md §14.4). Every PTE the simulator ever
// creates lives in the heap window (reserve() hands out only
// [kHeapBase, kHeapCeiling)) or the shadow window (implicit shadow
// object, materialised by makeResident); guard pages exist only inside
// heap reservations.
constexpr std::size_t kHeapWindowPages =
    static_cast<std::size_t>((kHeapCeiling - kHeapBase) / kPageSize);
constexpr Addr kShadowWindowEnd = shadowByteFor(kHeapCeiling) + kPageSize;
constexpr std::size_t kShadowWindowPages =
    static_cast<std::size_t>((kShadowWindowEnd - kShadowBase) /
                             kPageSize);

} // namespace

AddressSpace::AddressSpace(mem::PhysMem &pm) : pm_(pm) {}

Pte **
AddressSpace::fastSlot(Addr page)
{
    if (page >= kHeapBase && page < kHeapCeiling)
        return &heap_pte_[(page - kHeapBase) / kPageSize];
    if (page >= kShadowBase && page < kShadowWindowEnd)
        return &shadow_pte_[(page - kShadowBase) / kPageSize];
    return nullptr;
}

void
AddressSpace::setFastIndex(bool on)
{
    fast_index_ = on;
    if (!on) {
        heap_pte_.clear();
        shadow_pte_.clear();
        heap_guard_.clear();
        return;
    }
    heap_pte_.assign(kHeapWindowPages, nullptr);
    shadow_pte_.assign(kShadowWindowPages, nullptr);
    heap_guard_.assign(kHeapWindowPages, 0);
    for (auto &[va, p] : pages_)
        if (Pte **s = fastSlot(va))
            *s = &p;
    for (Addr va : guarded_)
        heap_guard_[(va - kHeapBase) / kPageSize] = 1;
}

Addr
AddressSpace::reserve(Addr length, bool cap_store)
{
    CREV_ASSERT(length > 0);
    const Addr req = roundUp(length, kPageSize);
    const Addr align =
        std::max<Addr>(cap::representableAlignment(req), kPageSize);
    const Addr padded = roundUp(cap::representableLength(req), kPageSize);

    const Addr base = roundUp(next_va_, align);
    next_va_ = base + padded;
    CREV_ASSERT(next_va_ <= kHeapCeiling);

    Reservation r;
    r.base = base;
    r.length = padded;
    r.requested = req;
    r.mapped_bytes = req;
    if (fast_index_) {
        // Reservation bases are strictly increasing (next_va_ is
        // monotone, never recycled), so the end hint makes this O(1)
        // instead of a root-to-leaf rb-tree descent. Same map contents.
        reservations_.emplace_hint(reservations_.end(), base, r);
    } else {
        reservations_[base] = r;
    }
    mapped_bytes_ += req;

    // Representability padding starts life as guard pages
    // (paper footnote 26); they are part of the reservation but any
    // touch faults.
    for (Addr va = base; va < base + padded; va += kPageSize) {
        Pte &p = pte(va);
        p = Pte{};
        p.cap_store = cap_store;
        p.write = true;
    }
    for (Addr va = base + req; va < base + padded; va += kPageSize)
        guardPage(va);
    return base;
}

bool
AddressSpace::canReserve(Addr length) const
{
    if (length == 0)
        return false;
    const Addr req = roundUp(length, kPageSize);
    const Addr align =
        std::max<Addr>(cap::representableAlignment(req), kPageSize);
    const Addr padded = roundUp(cap::representableLength(req), kPageSize);
    const Addr base = roundUp(next_va_, align);
    return base + padded <= kHeapCeiling;
}

void
AddressSpace::guardPage(Addr va)
{
    const Addr page = pageBase(va);
    guarded_.insert(page);
    if (fast_index_)
        heap_guard_[(page - kHeapBase) / kPageSize] = 1;
}

void
AddressSpace::unmap(sim::SimThread &t, Addr base, Addr length)
{
    CREV_ASSERT(pageOffset(base) == 0);
    Reservation *r = reservationFor(base);
    CREV_ASSERT(r != nullptr);
    CREV_ASSERT(base + length <= r->base + r->requested);
    CREV_ASSERT(r->state == ReservationState::kActive);

    if (checker_ != nullptr) {
        const bool locked = pmap_lock_.heldBy(t) ||
                            t.scheduler().stwOwnedBy(t);
        for (Addr va = base; va < base + length; va += kPageSize)
            checker_->onPteTeardown(t.id(), t.now(), va, locked);
    }

    for (Addr va = base; va < base + length; va += kPageSize) {
        if (guarded_.count(va))
            continue;
        auto it = pages_.find(va);
        CREV_ASSERT(it != pages_.end());
        if (it->second.valid) {
            pm_.freeFrame(it->second.pfn);
            freed_frames_.push_back(it->second.pfn);
            it->second.valid = false;
            it->second.pfn = 0;
            --resident_;
            resident_pages_.erase(va);
            cap_ever_pages_.erase(va);
            cap_dirty_pages_.erase(va);
        }
        guardPage(va);
        CREV_ASSERT(r->mapped_bytes >= kPageSize);
        r->mapped_bytes -= kPageSize;
        mapped_bytes_ -= kPageSize;
    }

    if (r->mapped_bytes == 0) {
        r->state = ReservationState::kQuarantined;
        newly_quarantined_.push_back(r);
    }
}

std::vector<Reservation *>
AddressSpace::takeNewlyQuarantined(sim::SimThread &t)
{
    std::vector<Reservation *> out;
    // The hand-off is only legal outside a revocation epoch (the
    // munmap quiesce barrier); the checker enforces the parity.
    if (checker_ != nullptr)
        checker_->onMappingHandoff(t.id(), t.now(),
                                   t.scheduler().shuttingDown());
    newly_quarantined_.swap(out);
    return out;
}

void
AddressSpace::release(sim::SimThread &t, Reservation *r)
{
    CREV_ASSERT(r->state == ReservationState::kQuarantined);
    r->state = ReservationState::kFreed;
    if (checker_ != nullptr) {
        const bool locked = pmap_lock_.heldBy(t) ||
                            t.scheduler().stwOwnedBy(t);
        for (Addr va = r->base; va < r->base + r->length;
             va += kPageSize)
            checker_->onPteTeardown(t.id(), t.now(), va, locked);
    }
    for (Addr va = r->base; va < r->base + r->length; va += kPageSize) {
        if (fast_index_) {
            if (Pte **s = fastSlot(va))
                *s = nullptr;
        }
        pages_.erase(va);
        resident_pages_.erase(va);
        cap_ever_pages_.erase(va);
        cap_dirty_pages_.erase(va);
    }
    ++pt_epoch_; // dangles any host-cached Pte pointers

    // Virtual addresses are never recycled: address-space non-reuse is
    // exactly the property revocation protects.
}

Reservation *
AddressSpace::reservationFor(Addr va)
{
    auto it = reservations_.upper_bound(va);
    if (it == reservations_.begin())
        return nullptr;
    --it;
    Reservation &r = it->second;
    if (va >= r.base && va < r.base + r.length)
        return &r;
    return nullptr;
}

Pte &
AddressSpace::pte(Addr va)
{
    const Addr page = pageBase(va);
    if (fast_index_) {
        if (Pte **s = fastSlot(page)) {
            if (*s == nullptr)
                *s = &pages_[page];
            return **s;
        }
    }
    return pages_[page];
}

Pte *
AddressSpace::findPte(Addr va)
{
    const Addr page = pageBase(va);
    if (fast_index_) {
        if (Pte **s = fastSlot(page))
            return *s;
    }
    auto it = pages_.find(page);
    return it == pages_.end() ? nullptr : &it->second;
}

bool
AddressSpace::inShadow(Addr va)
{
    return va >= kShadowBase &&
           va < shadowByteFor(kHeapCeiling) + kPageSize;
}

FaultKind
AddressSpace::classify(Addr va, bool is_store, bool is_cap_store) const
{
    const Addr page = pageBase(va);
    const Pte *p;
    if (fast_index_ && page >= kHeapBase && page < kHeapCeiling) {
        const std::size_t i =
            static_cast<std::size_t>((page - kHeapBase) / kPageSize);
        if (heap_guard_[i])
            return FaultKind::kGuard;
        p = heap_pte_[i];
        if (p == nullptr) // heap VA: never in the shadow region
            return FaultKind::kNotMapped;
    } else if (fast_index_ && page >= kShadowBase &&
               page < kShadowWindowEnd) {
        // Shadow pages are never guarded (guards live inside heap
        // reservations only).
        p = shadow_pte_[(page - kShadowBase) / kPageSize];
        if (p == nullptr) // implicit kernel-provided anonymous object
            return FaultKind::kDemandZero;
    } else {
        if (guarded_.count(page))
            return FaultKind::kGuard;

        auto pit = pages_.find(page);
        p = pit == pages_.end() ? nullptr : &pit->second;

        if (p == nullptr) {
            // Shadow region: implicit kernel-provided anonymous object.
            if (inShadow(va))
                return FaultKind::kDemandZero;
            return FaultKind::kNotMapped;
        }
    }
    if (!p->valid)
        return FaultKind::kDemandZero;
    if (is_store && !p->write)
        return FaultKind::kWriteProtect;
    if (is_cap_store && !p->cap_store)
        return FaultKind::kCapStore;
    return FaultKind::kNone;
}

Pte &
AddressSpace::makeResident(Addr va)
{
    const Addr page = pageBase(va);
    CREV_ASSERT(guarded_.count(page) == 0);
    Pte &p = pte(page);
    if (!p.valid) {
        if (inShadow(va)) {
            // The shadow bitmap never carries capabilities.
            p.cap_store = false;
            p.write = true;
        }
        p.pfn = pm_.allocFrame();
        p.valid = true;
        ++resident_;
        resident_pages_.insert(page);
    }
    return p;
}

void
AddressSpace::forEachResidentPage(
    const std::function<void(Addr, Pte &)> &fn)
{
    for (auto &[va, p] : pages_)
        if (p.valid)
            fn(va, p);
}

void
AddressSpace::notePtePublish(sim::SimThread &t, Addr va, PteContext ctx)
{
    const bool ok =
        pmap_lock_.heldBy(t) || t.scheduler().stwOwnedBy(t);
    if (checker_ != nullptr) {
        checker_->onPtePublish(t.id(), t.now(), pageBase(va), ok);
        return;
    }
    // No checker attached: enforce the claimed discipline outright.
    if (ctx == PteContext::kLocked)
        pmap_lock_.assertHeld(t);
    else
        CREV_ASSERT(ok);
}

void
AddressSpace::setChecker(check::RaceChecker *c)
{
    checker_ = c;
    if (c != nullptr)
        c->nameLock(&pmap_lock_, "pmap");
}

std::vector<Addr>
AddressSpace::takeFreedFrames()
{
    std::vector<Addr> out;
    out.swap(freed_frames_);
    return out;
}

} // namespace crev::vm
