#include "vm/tlb.h"

#include "base/logging.h"

namespace crev::vm {

std::size_t
Tlb::fastFindIndex(Addr vpn) const
{
    for (std::size_t i = homeOf(vpn); slot_vpn_[i] != 0;
         i = (i + 1) & slotMask())
        if (slot_vpn_[i] == vpn)
            return i;
    return ~std::size_t{0};
}

void
Tlb::fastInsert(Addr vpn, const Pte &pte)
{
    CREV_ASSERT(vpn != 0);
    std::size_t i = homeOf(vpn);
    while (slot_vpn_[i] != 0) {
        if (slot_vpn_[i] == vpn) {
            slot_pte_[i] = pte;
            return;
        }
        i = (i + 1) & slotMask();
    }
    slot_vpn_[i] = vpn;
    slot_pte_[i] = pte;
    ++fast_size_;
}

bool
Tlb::fastErase(Addr vpn)
{
    std::size_t i = fastFindIndex(vpn);
    if (i == ~std::size_t{0})
        return false;
    // Backward-shift deletion: no tombstones, probes stay short.
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & slotMask();
        if (slot_vpn_[j] == 0)
            break;
        const std::size_t h = homeOf(slot_vpn_[j]);
        if (((j - h) & slotMask()) >= ((j - i) & slotMask())) {
            slot_vpn_[i] = slot_vpn_[j];
            slot_pte_[i] = slot_pte_[j];
            i = j;
        }
    }
    slot_vpn_[i] = 0;
    --fast_size_;
    return true;
}

void
Tlb::setFastIndex(bool on)
{
    if (on == fast_)
        return;
    fast_ = on;
    if (on) {
        // 4x capacity, power of two: load factor stays <= 0.25.
        std::size_t n = 4;
        while (n < capacity_ * 4)
            n <<= 1;
        slot_vpn_.assign(n, 0);
        slot_pte_.assign(n, Pte{});
        fast_size_ = 0;
        // Migration order only affects slot layout, never membership
        // or any simulated observable. lint: unordered-ok
        for (const auto &[vpn, pte] : entries_)
            fastInsert(vpn, pte);
        entries_.clear();
    } else {
        for (std::size_t i = 0; i < slot_vpn_.size(); ++i)
            if (slot_vpn_[i] != 0)
                entries_[slot_vpn_[i]] = slot_pte_[i];
        slot_vpn_.clear();
        slot_pte_.clear();
        fast_size_ = 0;
    }
}

void
Tlb::insert(Addr vpn, const Pte &pte)
{
    if (fast_) {
        const std::size_t i = fastFindIndex(vpn);
        if (i != ~std::size_t{0}) {
            slot_pte_[i] = pte;
            return;
        }
        if (fast_size_ >= capacity_) {
            // FIFO eviction keeps runs deterministic; the queue may
            // hold vpns already dropped by invalidatePage, so pop
            // until an erase actually lands (same lazy scheme as the
            // map backing).
            while (!fifo_.empty()) {
                const Addr victim = fifo_.front();
                fifo_.pop_front();
                if (fastErase(victim))
                    break;
            }
        }
        fifo_.push_back(vpn);
        fastInsert(vpn, pte);
        return;
    }
    if (entries_.count(vpn) == 0) {
        if (entries_.size() >= capacity_) {
            // FIFO eviction keeps runs deterministic.
            while (!fifo_.empty()) {
                const Addr victim = fifo_.front();
                fifo_.pop_front();
                if (entries_.erase(victim) > 0)
                    break;
            }
        }
        fifo_.push_back(vpn);
    }
    entries_[vpn] = pte;
}

void
Tlb::invalidatePage(Addr vpn)
{
    if (fast_) {
        fastErase(vpn);
        return;
    }
    entries_.erase(vpn);
}

void
Tlb::invalidateAll()
{
    if (fast_) {
        slot_vpn_.assign(slot_vpn_.size(), 0);
        fast_size_ = 0;
    } else {
        entries_.clear();
    }
    fifo_.clear();
}

} // namespace crev::vm
