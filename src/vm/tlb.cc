#include "vm/tlb.h"

namespace crev::vm {

const Pte *
Tlb::lookup(Addr vpn) const
{
    auto it = entries_.find(vpn);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &it->second;
}

const Pte *
Tlb::peek(Addr vpn) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? nullptr : &it->second;
}

void
Tlb::insert(Addr vpn, const Pte &pte)
{
    if (entries_.count(vpn) == 0) {
        if (entries_.size() >= capacity_) {
            // FIFO eviction keeps runs deterministic.
            while (!fifo_.empty()) {
                const Addr victim = fifo_.front();
                fifo_.pop_front();
                if (entries_.erase(victim) > 0)
                    break;
            }
        }
        fifo_.push_back(vpn);
    }
    entries_[vpn] = pte;
}

void
Tlb::invalidatePage(Addr vpn)
{
    entries_.erase(vpn);
}

void
Tlb::invalidateAll()
{
    entries_.clear();
    fifo_.clear();
}

} // namespace crev::vm
