/**
 * @file
 * The simulated process address space.
 *
 * Virtual memory is handed out as *reservations* (paper §6.2): each
 * mmap-like request is padded to CHERI-representable alignment and
 * backed by guard mappings once partially unmapped, so holes can never
 * be refilled by a later mapping. A fully unmapped reservation is
 * *quarantined* and only released after a revocation pass has erased
 * capabilities referencing it.
 *
 * Pages are demand-zero: the first touch allocates a physical frame.
 * The page table is an ordered map so sweeps iterate deterministically.
 */

#ifndef CREV_VM_ADDRESS_SPACE_H_
#define CREV_VM_ADDRESS_SPACE_H_

#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "mem/phys_mem.h"
#include "sim/sync.h"
#include "vm/pte.h"

namespace crev::check {
class RaceChecker;
}

namespace crev::vm {

/** Lifecycle of a reservation. */
enum class ReservationState {
    kActive,      //!< at least one page still mapped
    kQuarantined, //!< fully unmapped; awaiting revocation
    kFreed,       //!< revoked and released
};

/** One mmap-style reservation. */
struct Reservation
{
    Addr base = 0;
    Addr length = 0; //!< padded to representable alignment
    Addr requested = 0;
    ReservationState state = ReservationState::kActive;
    Addr mapped_bytes = 0;
    /** Epoch in which quarantine began (set by the kernel layer). */
    std::uint64_t quarantine_epoch = 0;
};

/** Fixed address-space layout. */
constexpr Addr kHeapBase = 0x0000'4000'0000ull;
constexpr Addr kHeapCeiling = 0x0000'8000'0000ull;
/** Shadow (revocation bitmap) region: byte for VA v at base + (v>>7). */
constexpr Addr kShadowBase = 0x2000'0000'0000ull;

/** Shadow-bitmap byte address covering virtual address @p va. */
constexpr Addr
shadowByteFor(Addr va)
{
    return kShadowBase + (va >> (kGranuleBits + 3));
}

/**
 * Locking context a caller claims when publishing an in-place PTE
 * mutation (clearing CapDirty, setting CLG/trap bits): either the pmap
 * lock is held, or the caller owns an active stop-the-world window.
 */
enum class PteContext {
    kLocked, //!< publisher holds the pmap lock
    kStw,    //!< publisher owns the stop-the-world window
};

/** The vmspace: reservations, page table, pmap lock. */
class AddressSpace
{
  public:
    explicit AddressSpace(mem::PhysMem &pm);

    /**
     * Reserve @p length bytes of zeroed anonymous memory; the
     * reservation is padded per capability representability. Returns
     * the base address.
     */
    Addr reserve(Addr length, bool cap_store = true);

    /**
     * Whether a reserve(@p length) would fit below the heap ceiling
     * (same padding/alignment math, no side effects). The allocator
     * probes this before mmap so address-space exhaustion can degrade
     * to emergency quarantine reclaim instead of tripping reserve()'s
     * assertion.
     */
    bool canReserve(Addr length) const;

    /**
     * Unmap [base, base+length) inside one reservation. Freed frames
     * return to the physical pool immediately; the virtual range
     * becomes guard pages. When the whole reservation is unmapped it
     * transitions to kQuarantined and is reported via
     * takeNewlyQuarantined() for the revoker to process.
     */
    void unmap(sim::SimThread &t, Addr base, Addr length);

    /** Reservations that became quarantined since the last call. */
    std::vector<Reservation *> takeNewlyQuarantined(sim::SimThread &t);

    /** Release a revoked reservation (kernel layer, post-epoch). */
    void release(sim::SimThread &t, Reservation *r);

    /** The reservation containing @p va, or nullptr. */
    Reservation *reservationFor(Addr va);

    /** PTE for @p va, creating an empty entry if absent. */
    Pte &pte(Addr va);
    /** PTE lookup without creation. */
    Pte *findPte(Addr va);

    /** Classify a touch of @p va (no side effects). */
    FaultKind classify(Addr va, bool is_store, bool is_cap_store) const;

    /** Make the page containing @p va resident (demand-zero). */
    Pte &makeResident(Addr va);

    /**
     * Iterate over resident pages in ascending VA order. @p fn
     * receives the page's base VA and its PTE.
     */
    void forEachResidentPage(
        const std::function<void(Addr, Pte &)> &fn);

    /** Number of resident pages (RSS in pages). */
    std::size_t residentPages() const { return resident_; }

    // --- host-side page indexes (zero simulated cost) ---
    //
    // Ordered sets of page base VAs maintained at the existing
    // residency / storeCap / publishPage choke points, so sweeps can
    // enumerate candidate pages without walking the whole page table.
    // residentPageSet() is an exact mirror of the valid PTEs; the
    // cap-ever and cap-dirty indexes are *supersets* of the pages
    // whose live PTE flag is set (flags are only ever raised through
    // storeCap, but tests may lower them directly), so consumers must
    // re-check the live PTE. Ascending order keeps index-driven sweeps
    // visiting pages in exactly the page-table walk's order.

    /** Base VAs of all resident pages, ascending. */
    const std::set<Addr> &residentPageSet() const
    {
        return resident_pages_;
    }
    /** Superset of pages with the cap_ever PTE flag set. */
    const std::set<Addr> &capEverPages() const
    {
        return cap_ever_pages_;
    }
    /** Superset of pages with the cap_dirty PTE flag set. */
    const std::set<Addr> &capDirtyPages() const
    {
        return cap_dirty_pages_;
    }

    /** Index hook for the storeCap choke point (tag stored to page). */
    void noteCapStore(Addr page_va)
    {
        cap_ever_pages_.insert(page_va);
        cap_dirty_pages_.insert(page_va);
        bumpStoreGen(page_va);
    }
    /**
     * Index hook for the publishPage choke point: cap_dirty was just
     * cleared; cap_ever too when @p ever_cleared.
     */
    void noteCapPublish(Addr page_va, bool ever_cleared)
    {
        cap_dirty_pages_.erase(page_va);
        if (ever_cleared)
            cap_ever_pages_.erase(page_va);
        bumpStoreGen(page_va);
    }

    /**
     * Host-side per-page store-generation counter (the decode memo's
     * freshness heuristic, DESIGN.md §17.2). Bumped at the capability
     * store and publish choke points above and at TLB shootdown; pages
     * whose counter is unchanged since their memo entry was recorded
     * may skip re-scanning. Never consulted for correctness: memoised
     * decodes are validated against live CapBits at use.
     */
    std::uint64_t storeGen(Addr page_va) const
    {
        const auto it = store_gen_.find(page_va);
        return it == store_gen_.end() ? 0 : it->second;
    }
    void bumpStoreGen(Addr page_va) { ++store_gen_[page_va]; }

    /** The pmap lock serialising PTE updates during revocation. */
    sim::SimMutex &pmapLock() { return pmap_lock_; }

    /**
     * Declare that @p t is about to publish an in-place mutation of the
     * PTE for @p va under locking context @p ctx. With a race checker
     * attached this forwards the (uncharged) observation and lets the
     * run continue so the checker can report; without one it is a hard
     * assertion that the claimed discipline actually holds.
     */
    void notePtePublish(sim::SimThread &t, Addr va, PteContext ctx);

    /** Attach the race checker (null = off); names the pmap lock. */
    void setChecker(check::RaceChecker *c);

    /** Frames freed since construction whose caches must be purged. */
    std::vector<Addr> takeFreedFrames();

    mem::PhysMem &physMem() { return pm_; }

    /** Bytes currently mapped across active reservations. */
    Addr mappedBytes() const { return mapped_bytes_; }

    /** Whether @p va lies in the shadow-bitmap region. */
    static bool inShadow(Addr va);

    /**
     * Monotone counter bumped whenever page-table entries are erased
     * (reservation release). Host-side translation caches holding Pte
     * pointers must revalidate against it; insertions never move
     * existing entries, so they need no bump.
     */
    std::uint64_t pageTableEpoch() const { return pt_epoch_; }

    /**
     * Lockstep-engine lane-safe flat page-table windows (DESIGN.md
     * §14.4): direct-indexed Pte-pointer mirrors of pages_ for the
     * heap and shadow regions, plus a guard-page byte mirror for the
     * heap, so classify()/findPte()/pte() resolve without ordered-map
     * lookups. Slots hold pointers to std::map nodes (stable until
     * release() erases them, which also nulls the slot). Pure
     * host-side switch: no simulated observable changes.
     */
    void setFastIndex(bool on);

  private:
    /** Turn the page containing @p va into a guard page. */
    void guardPage(Addr va);

    /** Flat-window slot for page base @p page; null if outside. */
    Pte **fastSlot(Addr page);

    mem::PhysMem &pm_;
    std::map<Addr, Pte> pages_; //!< keyed by page base VA
    std::map<Addr, Reservation> reservations_; //!< keyed by base
    std::set<Addr> guarded_; //!< guard-page base VAs
    std::set<Addr> resident_pages_;  //!< exact mirror of valid PTEs
    std::set<Addr> cap_ever_pages_;  //!< superset: cap_ever pages
    std::set<Addr> cap_dirty_pages_; //!< superset: cap_dirty pages
    std::vector<Reservation *> newly_quarantined_;
    std::vector<Addr> freed_frames_;
    /** Per-page store generations (looked up, never iterated). */
    std::unordered_map<Addr, std::uint64_t> store_gen_;
    bool fast_index_ = false;
    std::vector<Pte *> heap_pte_;   //!< heap-window mirror of pages_
    std::vector<Pte *> shadow_pte_; //!< shadow-window mirror
    std::vector<std::uint8_t> heap_guard_; //!< guarded_ mirror (heap)
    sim::SimMutex pmap_lock_;
    check::RaceChecker *checker_ = nullptr;
    std::uint64_t pt_epoch_ = 0;
    Addr next_va_ = kHeapBase;
    Addr mapped_bytes_ = 0;
    std::size_t resident_ = 0;
};

} // namespace crev::vm

#endif // CREV_VM_ADDRESS_SPACE_H_
