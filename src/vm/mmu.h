/**
 * @file
 * The memory management unit: translation, permission checks, the
 * capability load barrier, and capability-dirty store tracking.
 *
 * Every simulated memory operation flows through here. The barrier
 * semantics follow paper §4.1: each core carries a capability load
 * generation register; a *tagged* capability load from a page whose
 * (TLB-cached) PTE generation mismatches the core's traps into the
 * registered handler — Reloaded's self-healing fault path — and then
 * retries. Capability stores set the PTE's cap-dirty and cap-ever
 * bits, hardware-DBM style (§4.2).
 */

#ifndef CREV_VM_MMU_H_
#define CREV_VM_MMU_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.h"
#include "cap/capability.h"
#include "mem/memory_system.h"
#include "mem/phys_mem.h"
#include "sim/cost_model.h"
#include "sim/scheduler.h"
#include "vm/address_space.h"
#include "vm/tlb.h"

namespace crev::check {
class SafetyOracle;
} // namespace crev::check

namespace crev::revoker {
class RecoveryManager;
} // namespace crev::revoker

namespace crev::sim {
class FaultInjector;
} // namespace crev::sim

namespace crev::vm {

/** MMU event counters. */
struct MmuStats
{
    std::uint64_t demand_faults = 0;
    std::uint64_t load_barrier_faults = 0;
    std::uint64_t tlb_shootdowns = 0;
    /** Ack-based shootdown rounds beyond the first (lost/late IPIs). */
    std::uint64_t shootdown_resends = 0;
};

/** The machine's MMU (one per simulated process/machine). */
class Mmu
{
  public:
    /**
     * Handler invoked on a capability load-generation fault. It runs
     * on the faulting thread (costs accrue there), must bring the
     * page's PTE up to the current generation, and is responsible for
     * TLB shootdowns.
     */
    using LoadFaultHandler =
        std::function<void(sim::SimThread &, Addr va)>;

    /**
     * Inline load filter (CHERIoT-style, paper §6.3): invoked for
     * every *tagged* capability load with the decoded value; returning
     * true strips the tag from the value entering the register file
     * (the in-memory copy is untouched — not self-healing).
     */
    using LoadFilter =
        std::function<bool(sim::SimThread &, const cap::Capability &)>;

    /**
     * Extra latency charged on every memory access (fault injection's
     * memory-contention spikes). Must be a pure function of the
     * thread's virtual time.
     */
    using AccessPenaltyHook = std::function<Cycles(sim::SimThread &)>;

    Mmu(mem::PhysMem &pm, mem::MemorySystem &ms, AddressSpace &as,
        const sim::CostModel &cm);

    // --- user-mode access paths (barriered) ---

    /** Load @p len bytes at @p va (may span pages). */
    void loadData(sim::SimThread &t, Addr va, void *out,
                  std::size_t len);
    /** Store @p len bytes at @p va; clears overlapped tags. */
    void storeData(sim::SimThread &t, Addr va, const void *in,
                   std::size_t len);
    std::uint64_t loadU64(sim::SimThread &t, Addr va);
    void storeU64(sim::SimThread &t, Addr va, std::uint64_t v);

    /** Tagged capability load; subject to the load barrier. */
    cap::Capability loadCap(sim::SimThread &t, Addr va);
    /** Capability store; sets cap-dirty/cap-ever when tagged. */
    void storeCap(sim::SimThread &t, Addr va, const cap::Capability &c);

    // --- kernel/revoker access paths (no barrier, no dirtying) ---

    /** Load a capability bypassing the load barrier (sweeper). */
    cap::Capability kernelLoadCap(sim::SimThread &t, Addr va);
    /** Clear a granule's tag without touching dirty tracking. */
    void kernelClearTag(sim::SimThread &t, Addr va);
    /** Tag peek with no cost (the sweep charges line reads itself). */
    bool peekTag(Addr va);
    /** Whether any granule of the page containing @p va is tagged
     *  right now (clean-page detection re-check; no cost). */
    bool pageHasTags(Addr va);
    /** Capability peek with no cost (value already on-chip after a
     *  charged line read). */
    cap::Capability peekCap(Addr va);
    /** Charge a read of @p len bytes at @p va (sweep line fetches). */
    void chargeRead(sim::SimThread &t, Addr va, std::size_t len);
    /**
     * chargeRead for a caller that already resolved the physical
     * address (the fast sweep resolves its page's frame once):
     * identical simulated charge, no host-side PTE lookup.
     */
    void
    chargeReadPaddr(sim::SimThread &t, Addr paddr, std::size_t len)
    {
        chargeAccess(t, t.core(), paddr, len, false);
    }
    /** Charge a write (tag clears dirty a line). */
    void chargeWrite(sim::SimThread &t, Addr va, std::size_t len);

    /**
     * Packed live tag bits (bit g = granule g of the line) for the
     * cache line containing @p va; 0 if the page is absent or not
     * resident. No cost — this is peekTag for four granules at once.
     */
    unsigned peekLineTagNibble(Addr va);

    /**
     * Fast path for the revocation bitmap's single-byte shadow loads.
     * Succeeds only when the calling core's TLB already holds a valid
     * translation for the shadow page, in which case the charge
     * sequence is identical to loadData()'s TLB-hit path (one memory
     * access, no fill). Returns false with no side effects otherwise;
     * the caller must then take the ordinary loadData() path.
     */
    bool tryKernelShadowLoad(sim::SimThread &t, Addr va,
                             std::uint8_t *out);

    /**
     * Toggle host-side memoisation (translation/frame caching, nibble
     * scans). Simulated charges are identical either way; the
     * determinism test holds this invariant (DESIGN.md §9).
     */
    void setHostFastPaths(bool on);
    bool hostFastPaths() const { return host_fast_paths_; }

    /**
     * Route every core's TLB through the open-addressed backing and
     * the MMU's memory dispatch through PhysMem's inline dense
     * variants (the lockstep engine's lane-safe structures, DESIGN.md
     * §14.4). TLB entry sets, hit/miss sequences, and every memory
     * observable are identical either way.
     */
    void setFastTlb(bool on);

    /**
     * Drop the one-entry PTE cache. The cache is keyed by the address
     * space's page-table epoch, which only release() bumps — in-place
     * PTE mutations (CLG flips at epoch open, load-fault self-heals,
     * cap-dirty updates, shootdowns) change PTE *contents* without
     * changing the epoch, so every such site must invalidate
     * explicitly rather than rely on the epoch key.
     */
    void invalidatePteCache() { cached_pte_ = nullptr; }

    /** Attach an event tracer (null = off); shootdowns become
     *  kTlbShootdown instants. */
    void setTracer(trace::Tracer *t) { tracer_ = t; }

    /** Attach the fault injector (null = off): arms the lost/late
     *  shootdown-IPI domain in shootdownPage's ack protocol. */
    void setFaultInjector(sim::FaultInjector *fi) { injector_ = fi; }

    /** Attach the recovery manager (null = off): shootdown re-send
     *  rounds become kShootdownResend tickets. */
    void setRecoveryManager(revoker::RecoveryManager *rm)
    {
        recovery_ = rm;
    }

    /** Attach the temporal-safety oracle (null = off): every tagged
     *  capability entering a register file is checked against the
     *  revoked-generation record. Zero simulated cost. */
    void setSafetyOracle(check::SafetyOracle *o) { oracle_ = o; }

    /**
     * Uncharged single-byte peek of simulated memory (via the page
     * tables, no TLB, no cost): the Auditor's summary-repair path
     * reads ground-truth shadow bytes with it. Returns false when the
     * page is not resident.
     */
    bool peekByte(Addr va, std::uint8_t *out);

    // --- load-generation plumbing ---

    void setLoadFaultHandler(LoadFaultHandler h) { handler_ = std::move(h); }
    void setLoadFilter(LoadFilter f) { filter_ = std::move(f); }
    void setAccessPenaltyHook(AccessPenaltyHook h)
    {
        penalty_ = std::move(h);
    }
    /** Current per-core generation bit. */
    unsigned coreGen(unsigned core) const;
    /** Flip every core's generation register (STW entry). */
    void flipAllCoreGens(sim::SimThread &t);
    /** The generation new PTEs should carry to be "current". */
    unsigned currentGen() const { return gen_; }

    // --- TLB management ---

    Tlb &tlb(unsigned core);
    /** Invalidate one page in all TLBs, charging the caller. */
    void shootdownPage(sim::SimThread &t, Addr va);
    /** Drop freed frames from all caches (frame reuse hygiene). */
    void purgeFreedFrames();

    /**
     * Monotone counter bumped whenever purgeFreedFrames() retires
     * frames: a (page, pfn) pairing observed before the bump may have
     * been recycled, so memoised decode state keyed on it is stale
     * (host-side freshness only; see AddressSpace::storeGen).
     */
    std::uint64_t frameEpoch() const { return frame_epoch_; }

    const MmuStats &stats() const { return stats_; }
    AddressSpace &addressSpace() { return as_; }
    mem::PhysMem &physMem() { return pm_; }
    mem::MemorySystem &memorySystem() { return ms_; }
    const sim::CostModel &costs() const { return cm_; }

  private:
    /**
     * Translate one intra-page access, resolving demand-zero faults
     * and throwing MemoryFault on violations. Returns the physical
     * address; @p pte_out receives the TLB-resident PTE snapshot.
     */
    Addr translate(sim::SimThread &t, Addr va, bool is_store,
                   bool is_cap_store, Pte *pte_out = nullptr);

    /** Per-page segment iteration helper. */
    template <typename Fn>
    void forSegments(Addr va, std::size_t len, Fn fn);

    /**
     * findPte through a one-entry cache (kernel sweep paths touch the
     * same page hundreds of times in a row). Only non-null results are
     * cached — a null result would go stale the moment makeResident()
     * inserts the PTE — and the cache revalidates against the address
     * space's page-table epoch since release() erases entries.
     */
    Pte *findPteCached(Addr va);

    /** Charge one memory access, applying any injected penalty. */
    void
    chargeAccess(sim::SimThread &t, unsigned core, Addr paddr,
                 std::size_t len, bool write)
    {
        Cycles c = ms_.access(core, paddr, len, write);
        if (penalty_)
            c += penalty_(t);
        t.accrue(c);
    }

    mem::PhysMem &pm_;
    mem::MemorySystem &ms_;
    AddressSpace &as_;
    const sim::CostModel &cm_;
    std::vector<Tlb> tlbs_;
    std::vector<unsigned> core_gen_;
    unsigned gen_ = 0;
    LoadFaultHandler handler_;
    LoadFilter filter_;
    AccessPenaltyHook penalty_;
    MmuStats stats_;
    sim::FaultInjector *injector_ = nullptr;
    revoker::RecoveryManager *recovery_ = nullptr;
    check::SafetyOracle *oracle_ = nullptr;

    bool host_fast_paths_ = true;
    /** Lockstep-engine gate for PhysMem's inline dense variants. */
    bool fast_mem_ = false;
    Addr cached_vpn_ = 0;
    Pte *cached_pte_ = nullptr;
    std::uint64_t cached_pt_epoch_ = 0;
    std::uint64_t frame_epoch_ = 0;

    trace::Tracer *tracer_ = nullptr;
};

} // namespace crev::vm

#endif // CREV_VM_MMU_H_
