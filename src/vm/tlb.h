/**
 * @file
 * A per-core translation lookaside buffer.
 *
 * Caches PTE snapshots keyed by virtual page number with FIFO
 * replacement (deterministic). Shootdowns — needed whenever the
 * revoker updates a PTE's generation or permissions — invalidate a
 * single page on every core and are charged to the updater.
 *
 * Two interchangeable host-side backings (DESIGN.md §14.4): the
 * original unordered_map, and a small open-addressed linear-probe
 * table with backward-shift deletion used under the lockstep engine.
 * Entry set, FIFO eviction order, and hit/miss sequences are identical
 * between the two — the switch is invisible to simulated state.
 */

#ifndef CREV_VM_TLB_H_
#define CREV_VM_TLB_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "vm/pte.h"

namespace crev::vm {

/** A single core's TLB. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 128) : capacity_(capacity) {}

    /** Look up @p vpn; returns nullptr on miss. */
    const Pte *
    lookup(Addr vpn) const
    {
        const Pte *p = peek(vpn);
        if (p == nullptr) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        return p;
    }

    /**
     * Counter-free lookup for host-side fast paths that must observe
     * the TLB without perturbing hit/miss statistics.
     */
    const Pte *
    peek(Addr vpn) const
    {
        if (fast_)
            return fastFind(vpn);
        auto it = entries_.find(vpn);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Install a translation, evicting FIFO if full. */
    void insert(Addr vpn, const Pte &pte);

    /** Drop one page's translation. */
    void invalidatePage(Addr vpn);

    /** Drop everything (e.g. on generation flip). */
    void invalidateAll();

    /**
     * Switch to (or from) the open-addressed backing. Existing entries
     * migrate; FIFO order is preserved (the queue is shared between
     * backings). Pure host-side switch.
     */
    void setFastIndex(bool on);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::size_t slotMask() const { return slot_vpn_.size() - 1; }

    std::size_t
    homeOf(Addr vpn) const
    {
        // Fibonacci hashing: deterministic, good spread for
        // page-aligned keys.
        return static_cast<std::size_t>(
                   (vpn * 0x9E3779B97F4A7C15ull) >> 32) &
               slotMask();
    }

    /**
     * Probe the key array only (structure-of-arrays: the whole vpn
     * array is a few hundred bytes, so probes stay in host L1; PTE
     * payloads are touched only on a hit). Vpn 0 marks an empty slot
     * — the zero page is never mapped, the heap starts at kHeapBase.
     */
    const Pte *
    fastFind(Addr vpn) const
    {
        for (std::size_t i = homeOf(vpn); slot_vpn_[i] != 0;
             i = (i + 1) & slotMask())
            if (slot_vpn_[i] == vpn)
                return &slot_pte_[i];
        return nullptr;
    }

    /** Index of @p vpn's slot, or npos when absent. */
    std::size_t fastFindIndex(Addr vpn) const;
    void fastInsert(Addr vpn, const Pte &pte);
    bool fastErase(Addr vpn);

    std::size_t capacity_;
    std::unordered_map<Addr, Pte> entries_;
    std::deque<Addr> fifo_;
    bool fast_ = false;
    std::vector<Addr> slot_vpn_; //!< open-addressed keys (0 = empty)
    std::vector<Pte> slot_pte_;  //!< payloads, parallel to slot_vpn_
    std::size_t fast_size_ = 0;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

} // namespace crev::vm

#endif // CREV_VM_TLB_H_
