/**
 * @file
 * A per-core translation lookaside buffer.
 *
 * Caches PTE snapshots keyed by virtual page number with FIFO
 * replacement (deterministic). Shootdowns — needed whenever the
 * revoker updates a PTE's generation or permissions — invalidate a
 * single page on every core and are charged to the updater.
 */

#ifndef CREV_VM_TLB_H_
#define CREV_VM_TLB_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "base/types.h"
#include "vm/pte.h"

namespace crev::vm {

/** A single core's TLB. */
class Tlb
{
  public:
    explicit Tlb(std::size_t capacity = 128) : capacity_(capacity) {}

    /** Look up @p vpn; returns nullptr on miss. */
    const Pte *lookup(Addr vpn) const;

    /**
     * Counter-free lookup for host-side fast paths that must observe
     * the TLB without perturbing hit/miss statistics.
     */
    const Pte *peek(Addr vpn) const;

    /** Install a translation, evicting FIFO if full. */
    void insert(Addr vpn, const Pte &pte);

    /** Drop one page's translation. */
    void invalidatePage(Addr vpn);

    /** Drop everything (e.g. on generation flip). */
    void invalidateAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, Pte> entries_;
    std::deque<Addr> fifo_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

} // namespace crev::vm

#endif // CREV_VM_TLB_H_
