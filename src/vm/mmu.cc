#include "vm/mmu.h"

#include <cstring>

#include "base/logging.h"
#include "cap/compression.h"
#include "check/race_checker.h"
#include "check/safety_oracle.h"
#include "revoker/recovery.h"
#include "sim/fault_injector.h"
#include "trace/trace.h"
#include "vm/fault.h"

namespace crev::vm {

Mmu::Mmu(mem::PhysMem &pm, mem::MemorySystem &ms, AddressSpace &as,
         const sim::CostModel &cm)
    : pm_(pm), ms_(ms), as_(as), cm_(cm),
      core_gen_(ms.numCores(), 0)
{
    tlbs_.reserve(ms.numCores());
    for (unsigned c = 0; c < ms.numCores(); ++c)
        tlbs_.emplace_back();
}

Tlb &
Mmu::tlb(unsigned core)
{
    CREV_ASSERT(core < tlbs_.size());
    return tlbs_[core];
}

unsigned
Mmu::coreGen(unsigned core) const
{
    CREV_ASSERT(core < core_gen_.size());
    return core_gen_[core];
}

void
Mmu::flipAllCoreGens(sim::SimThread &t)
{
    if (auto *c = t.scheduler().checker())
        c->onGenFlip(t.id(), t.now());
    gen_ ^= 1u;
    for (auto &g : core_gen_)
        g = gen_;
    // Generation checks are made against TLB-resident PTE copies; the
    // flip takes effect immediately on all cores (they are already
    // synchronised: this happens inside the STW window).
    invalidatePteCache();
    t.accrueNoYield(cm_.pte_update);
}

void
Mmu::shootdownPage(sim::SimThread &t, Addr va)
{
    const Addr page = pageBase(va);
    // Shootdowns follow in-place PTE rewrites (self-heals, trap-bit
    // arming): the one-entry cache may hold the page being rewritten.
    invalidatePteCache();
    // The PTE disposition just changed; memoised decode state for the
    // page is no longer page-fresh (publishPage restamps afterwards
    // for its own shootdowns — DESIGN.md §17.2).
    as_.bumpStoreGen(page);
    ++stats_.tlb_shootdowns;
    if (tracer_ != nullptr)
        tracer_->record(t.id(), t.core(), t.now(),
                        trace::EventType::kTlbShootdown, 0, page);

    // Ack-based IPI protocol. Each round sends an IPI to every core
    // that has not yet acked and charges one shootdown round on the
    // initiator (accrueNoYield: this runs under NoYield windows and
    // pmap locks, so it must never become a scheduling point). With no
    // injector — or the shootdown domains disarmed — every core acks
    // in round one and the charge sequence is exactly the PR 1
    // synchronous shootdown's. An injected drop leaves the target's
    // TLB stale for the round, which is *safe* for the barrier
    // designs (a stale generation only re-traps and self-heals); the
    // cost is the bounded re-send rounds below, ticketed through the
    // kShootdownResend recovery protocol with saturating backoff.
    CREV_ASSERT(tlbs_.size() <= 64);
    std::uint64_t pending =
        tlbs_.size() >= 64 ? ~0ull : (1ull << tlbs_.size()) - 1;
    revoker::RecoveryManager::Ticket ticket;
    for (;;) {
        Cycles ack_wait = 0;
        for (unsigned c = 0; c < tlbs_.size(); ++c) {
            if ((pending >> c & 1) == 0)
                continue;
            if (injector_ != nullptr &&
                injector_->dropShootdownIpi(t, c))
                continue; // IPI lost; the core never sees it
            tlbs_[c].invalidatePage(pageOf(page));
            if (injector_ != nullptr) {
                const Cycles late = injector_->shootdownAckDelay(t, c);
                ack_wait = late > ack_wait ? late : ack_wait;
            }
            pending &= ~(1ull << c);
        }
        t.accrueNoYield(cm_.tlb_shootdown + ack_wait);
        if (pending == 0)
            break;

        // Deadline passed with IPIs outstanding: re-send, bounded.
        if (recovery_ != nullptr && !ticket.open)
            ticket = recovery_->open(
                t, trace::RecoveryProtocol::kShootdownResend);
        if (recovery_ != nullptr && !recovery_->attempt(t, ticket)) {
            // Retry budget spent: NMI-grade fallback — invalidate the
            // stragglers synchronously so the machine never runs with
            // an unbounded-stale TLB, and record the failure.
            for (unsigned c = 0; c < tlbs_.size(); ++c)
                if (pending >> c & 1)
                    tlbs_[c].invalidatePage(pageOf(page));
            t.accrueNoYield(cm_.tlb_shootdown);
            recovery_->close(t, ticket,
                             recovery_->failureOutcome(t.now(), ticket));
            return;
        }
        ++stats_.shootdown_resends;
        if (recovery_ != nullptr)
            t.accrueNoYield(recovery_->backoff(ticket));
    }
    if (ticket.open)
        recovery_->close(t, ticket,
                         trace::RecoveryOutcome::kSucceeded);
}

void
Mmu::purgeFreedFrames()
{
    invalidatePteCache();
    bool any = false;
    for (Addr pfn : as_.takeFreedFrames()) {
        ms_.invalidateFrame(pfn);
        any = true;
    }
    // Freed frames can be re-paired with any VA: advance the frame
    // epoch so every memoised decode recorded against the old pairing
    // is page-stale (conservative global invalidation).
    if (any)
        ++frame_epoch_;
}

Addr
Mmu::translate(sim::SimThread &t, Addr va, bool is_store,
               bool is_cap_store, Pte *pte_out)
{
    const unsigned core = t.core();
    const Addr vpn = pageOf(va);

    for (;;) {
        const Pte *cached = tlbs_[core].lookup(vpn);
        if (cached != nullptr && cached->valid) {
            if (is_store && !cached->write) {
                // Fall through to the slow path for a precise check.
            } else if (is_cap_store && !cached->cap_store) {
                // Fall through likewise.
            } else {
                if (pte_out != nullptr)
                    *pte_out = *cached;
                return (cached->pfn << kPageBits) | pageOffset(va);
            }
        }

        // TLB miss (or cached entry is insufficient): walk.
        t.accrue(cm_.tlb_fill);
        const FaultKind fk = as_.classify(va, is_store, is_cap_store);
        switch (fk) {
          case FaultKind::kNone:
            break;
          case FaultKind::kDemandZero: {
            t.accrue(cm_.trap + cm_.page_fault_service);
            Pte &p = as_.makeResident(va);
            // New mappings adopt the current load generation so a
            // fresh page never traps spuriously (§4.1: pages kept up
            // to date).
            p.clg = gen_;
            ++stats_.demand_faults;
            break;
          }
          case FaultKind::kNotMapped:
          case FaultKind::kGuard:
            t.accrue(cm_.trap);
            throw MemoryFault(fk, va);
          case FaultKind::kWriteProtect:
          case FaultKind::kCapStore:
            t.accrue(cm_.trap);
            throw MemoryFault(fk, va);
          case FaultKind::kLoadBarrier:
            panic("classify() does not raise load-barrier faults");
        }

        Pte *p = as_.findPte(va);
        CREV_ASSERT(p != nullptr && p->valid);
        tlbs_[core].insert(vpn, *p);
        // Loop: the next iteration hits in the TLB and re-checks.
    }
}

template <typename Fn>
void
Mmu::forSegments(Addr va, std::size_t len, Fn fn)
{
    while (len > 0) {
        const std::size_t in_page = static_cast<std::size_t>(
            std::min<Addr>(len, kPageSize - pageOffset(va)));
        fn(va, in_page);
        va += in_page;
        len -= in_page;
    }
}

void
Mmu::loadData(sim::SimThread &t, Addr va, void *out, std::size_t len)
{
    auto *dst = static_cast<std::uint8_t *>(out);
    forSegments(va, len, [&](Addr seg_va, std::size_t seg_len) {
        const Addr paddr = translate(t, seg_va, false, false);
        chargeAccess(t, t.core(), paddr, seg_len, false);
        if (fast_mem_)
            pm_.readDense(paddr, dst, seg_len);
        else
            pm_.read(paddr, dst, seg_len);
        dst += seg_len;
    });
}

void
Mmu::storeData(sim::SimThread &t, Addr va, const void *in,
               std::size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    forSegments(va, len, [&](Addr seg_va, std::size_t seg_len) {
        const Addr paddr = translate(t, seg_va, true, false);
        chargeAccess(t, t.core(), paddr, seg_len, true);
        if (fast_mem_)
            pm_.writeDense(paddr, src, seg_len);
        else
            pm_.write(paddr, src, seg_len);
        src += seg_len;
    });
}

std::uint64_t
Mmu::loadU64(sim::SimThread &t, Addr va)
{
    std::uint64_t v = 0;
    loadData(t, va, &v, sizeof(v));
    return v;
}

void
Mmu::storeU64(sim::SimThread &t, Addr va, std::uint64_t v)
{
    storeData(t, va, &v, sizeof(v));
}

cap::Capability
Mmu::loadCap(sim::SimThread &t, Addr va)
{
    CREV_ASSERT(va % kGranuleSize == 0);
    const unsigned core = t.core();

    for (;;) {
        Pte snapshot;
        const Addr paddr = translate(t, va, false, false, &snapshot);
        // Lockstep fast path: resolve the frame once and reuse the
        // reference across the charge below. paddr -> frame is
        // immutable (frames are never erased), so the two reads see
        // exactly what the two per-call resolves would; the tag is
        // still read before the charge and the bits after it.
        const mem::Frame *fr =
            fast_mem_ ? &pm_.frameDense(pageOf(paddr)) : nullptr;
        const std::size_t gi = mem::PhysMem::granuleIndex(paddr);
        const bool tagged =
            fast_mem_ ? fr->testTag(gi) : pm_.tagAt(paddr);

        // The load barrier: a tagged load from a stale-generation page
        // (or an always-trap page, §7.6) traps before the value
        // reaches the register file.
        if (tagged &&
            (snapshot.clg != core_gen_[core] || snapshot.cap_load_trap)) {
            CREV_ASSERT(handler_ != nullptr);
            ++stats_.load_barrier_faults;
            t.accrue(cm_.trap);
            tlbs_[core].invalidatePage(pageOf(va));
            handler_(t, va);
            continue; // self-healing: retry the load
        }

        chargeAccess(t, core, paddr, kGranuleSize, false);
        cap::CapBits bits;
        bool tag;
        if (fast_mem_) {
            std::memcpy(&bits.lo,
                        fr->bytes.data() + pageOffset(paddr), 8);
            std::memcpy(&bits.hi,
                        fr->bytes.data() + pageOffset(paddr) + 8, 8);
            tag = fr->testTag(gi);
        } else {
            tag = pm_.loadCap(paddr, bits);
        }
        cap::Capability c = cap::decode(bits, tag);
        // CHERIoT-style inline filter (§6.3): strip revoked
        // capabilities on their way into the register file.
        if (c.tag && filter_ && filter_(t, c))
            c.tag = false;
        // Temporal-safety oracle: no revoked capability may reach a
        // register file after its revocation epoch completed. Pure
        // host-side observer — zero simulated cost.
        if (c.tag && oracle_ != nullptr)
            oracle_->onCapLoad(t.id(), t.now(), va, c.base);
        return c;
    }
}

void
Mmu::storeCap(sim::SimThread &t, Addr va, const cap::Capability &c)
{
    CREV_ASSERT(va % kGranuleSize == 0);
    const Addr paddr = translate(t, va, true, c.tag);
    chargeAccess(t, t.core(), paddr, kGranuleSize, true);
    if (fast_mem_)
        pm_.storeCapDense(paddr, cap::encode(c), c.tag);
    else
        pm_.storeCap(paddr, cap::encode(c), c.tag);
    if (c.tag) {
        Pte *p = as_.findPte(va);
        CREV_ASSERT(p != nullptr);
        if (!p->cap_dirty || !p->cap_ever) {
            // Hardware-managed dirty bit update (§4.2).
            p->cap_dirty = true;
            p->cap_ever = true;
            as_.noteCapStore(pageBase(va));
            invalidatePteCache();
            t.accrue(cm_.pte_update);
            tlbs_[t.core()].insert(pageOf(va), *p);
        }
    }
}

void
Mmu::setHostFastPaths(bool on)
{
    host_fast_paths_ = on;
    cached_pte_ = nullptr;
}

void
Mmu::setFastTlb(bool on)
{
    fast_mem_ = on;
    for (Tlb &tlb : tlbs_)
        tlb.setFastIndex(on);
}

Pte *
Mmu::findPteCached(Addr va)
{
    const Addr vpn = pageOf(va);
    if (host_fast_paths_ && cached_pte_ != nullptr &&
        cached_vpn_ == vpn && cached_pt_epoch_ == as_.pageTableEpoch())
        return cached_pte_;
    Pte *p = as_.findPte(va);
    if (host_fast_paths_ && p != nullptr) {
        cached_vpn_ = vpn;
        cached_pte_ = p;
        cached_pt_epoch_ = as_.pageTableEpoch();
    }
    return p;
}

cap::Capability
Mmu::kernelLoadCap(sim::SimThread &t, Addr va)
{
    CREV_ASSERT(va % kGranuleSize == 0);
    Pte *p = findPteCached(va);
    CREV_ASSERT(p != nullptr && p->valid);
    const Addr paddr = (p->pfn << kPageBits) | pageOffset(va);
    chargeAccess(t, t.core(), paddr, kGranuleSize, false);
    cap::CapBits bits;
    const bool tag = fast_mem_ ? pm_.loadCapDense(paddr, bits)
                               : pm_.loadCap(paddr, bits);
    return cap::decode(bits, tag);
}

void
Mmu::kernelClearTag(sim::SimThread &t, Addr va)
{
    Pte *p = findPteCached(va);
    CREV_ASSERT(p != nullptr && p->valid);
    const Addr paddr = (p->pfn << kPageBits) | pageOffset(va);
    chargeAccess(t, t.core(), paddr, 1, true);
    if (fast_mem_)
        pm_.clearTagDense(paddr);
    else
        pm_.clearTag(paddr);
}

cap::Capability
Mmu::peekCap(Addr va)
{
    Pte *p = findPteCached(va);
    CREV_ASSERT(p != nullptr && p->valid);
    const Addr paddr = (p->pfn << kPageBits) | pageOffset(va);
    cap::CapBits bits;
    const bool tag = fast_mem_ ? pm_.loadCapDense(paddr, bits)
                               : pm_.loadCap(paddr, bits);
    return cap::decode(bits, tag);
}

bool
Mmu::peekTag(Addr va)
{
    Pte *p = findPteCached(va);
    if (p == nullptr || !p->valid)
        return false;
    const Addr paddr = (p->pfn << kPageBits) | pageOffset(va);
    return fast_mem_ ? pm_.tagAtDense(paddr) : pm_.tagAt(paddr);
}

unsigned
Mmu::peekLineTagNibble(Addr va)
{
    Pte *p = findPteCached(va);
    if (p == nullptr || !p->valid)
        return 0;
    return pm_.lineTagNibble((p->pfn << kPageBits) | pageOffset(va));
}

bool
Mmu::pageHasTags(Addr va)
{
    Pte *p = findPteCached(va);
    if (p == nullptr || !p->valid)
        return false;
    return pm_.frameHasTags(p->pfn);
}

void
Mmu::chargeRead(sim::SimThread &t, Addr va, std::size_t len)
{
    Pte *p = findPteCached(va);
    CREV_ASSERT(p != nullptr && p->valid);
    chargeAccess(t, t.core(), (p->pfn << kPageBits) | pageOffset(va),
                 len, false);
}

void
Mmu::chargeWrite(sim::SimThread &t, Addr va, std::size_t len)
{
    Pte *p = findPteCached(va);
    CREV_ASSERT(p != nullptr && p->valid);
    chargeAccess(t, t.core(), (p->pfn << kPageBits) | pageOffset(va),
                 len, true);
}

bool
Mmu::peekByte(Addr va, std::uint8_t *out)
{
    Pte *p = findPteCached(va);
    if (p == nullptr || !p->valid)
        return false;
    if (fast_mem_)
        pm_.readDense((p->pfn << kPageBits) | pageOffset(va), out, 1);
    else
        pm_.read((p->pfn << kPageBits) | pageOffset(va), out, 1);
    return true;
}

bool
Mmu::tryKernelShadowLoad(sim::SimThread &t, Addr va, std::uint8_t *out)
{
    if (!host_fast_paths_)
        return false;
    const unsigned core = t.core();
    const Pte *cached = tlbs_[core].peek(pageOf(va));
    if (cached == nullptr || !cached->valid)
        return false;
    // Identical to loadData()'s TLB-hit path for a 1-byte read: one
    // charged access, no fill, no fault classification.
    const Addr paddr = (cached->pfn << kPageBits) | pageOffset(va);
    chargeAccess(t, core, paddr, 1, false);
    if (fast_mem_)
        pm_.readDense(paddr, out, 1);
    else
        pm_.read(paddr, out, 1);
    return true;
}

} // namespace crev::vm
