/**
 * @file
 * Quickstart: the smallest complete use of the library.
 *
 * Builds a simulated CHERI machine running the Cornucopia Reloaded
 * revoker, allocates from the temporally safe heap, frees, forces a
 * revocation epoch, and shows that the dangling capability has been
 * deterministically destroyed — while an unrelated capability keeps
 * working.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/machine.h"
#include "core/mutator.h"
#include "vm/fault.h"

using namespace crev;

int
main()
{
    // 1. Configure the machine: 4 cores, Reloaded revoker on core 2,
    //    default snmalloc-lite + mrs-style quarantine policy.
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.audit = true; // verify the revocation invariant every epoch

    core::Machine machine(cfg);

    // 2. Application code runs as a mutator thread pinned to core 3.
    machine.spawnMutator("app", 1u << 3, [&](core::Mutator &ctx) {
        // Allocate two objects; capabilities carry exact bounds.
        cap::Capability doc = ctx.malloc(256);
        cap::Capability note = ctx.malloc(64);
        std::printf("allocated  %s\n", doc.str().c_str());

        ctx.store64(doc, 0, 0xC0FFEE);
        ctx.store64(note, 0, 42);

        // Stash a pointer to `doc` inside `note` — a heap reference
        // the revoker will have to find.
        ctx.storeCap(note, 16, doc);

        // 3. Free `doc`. The memory is quarantined: the dangling
        //    pointer still reads the old object (UAF is possible
        //    until revocation) but the address space will not be
        //    reused before every capability to it is destroyed.
        ctx.free(doc);
        std::printf("after free, load through dangling cap: %#llx "
                    "(old object, quarantined — never a new one)\n",
                    static_cast<unsigned long long>(ctx.load64(doc, 0)));

        // 4. Force a revocation epoch (normally the quarantine policy
        //    triggers this automatically).
        machine.heap().drain(ctx.thread());

        // 5. The stored capability has been revoked in place.
        const cap::Capability revoked = ctx.loadCap(note, 16);
        std::printf("after revocation, stored cap tag=%d (revoked)\n",
                    revoked.tag);
        try {
            ctx.load64(revoked, 0);
            std::printf("ERROR: dereference should have faulted!\n");
        } catch (const vm::CapabilityFault &f) {
            std::printf("dereference faults as expected: %s\n",
                        f.what());
        }

        // Unrelated capabilities are untouched.
        std::printf("unrelated object still readable: %llu\n",
                    static_cast<unsigned long long>(
                        ctx.load64(note, 0)));
    });

    machine.run();

    // 6. Metrics: every run produces the paper's four key overheads.
    const core::RunMetrics m = machine.metrics();
    std::printf("\nrun summary: %s\n", m.summary().c_str());
    return 0;
}
