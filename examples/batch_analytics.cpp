/**
 * @file
 * Batch-analytics example: building a custom workload directly
 * against the public API, plus the mmap/munmap reservation-quarantine
 * path (paper §6.2) that protects whole mappings.
 *
 * The "analytics" job repeatedly maps a large input buffer (as a
 * file-copy or mmap-based reader would), builds an index of
 * heap-allocated records pointing into a dictionary, tears the
 * mapping down again, and replaces cold records. Under Reloaded both
 * the heap objects *and* the unmapped reservations are revoked before
 * any reuse.
 *
 *   $ ./batch_analytics
 */

#include <cstdio>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "vm/fault.h"

using namespace crev;

int
main()
{
    core::MachineConfig cfg;
    cfg.strategy = core::Strategy::kReloaded;
    cfg.audit = true;
    cfg.policy.min_bytes = 32 * 1024;
    core::Machine machine(cfg);

    machine.spawnMutator("analytics", 1u << 3, [&](core::Mutator &ctx) {
        auto &rng = ctx.rng();

        // A dictionary of interned strings (long-lived heap objects).
        std::vector<cap::Capability> dict;
        for (int i = 0; i < 512; ++i) {
            dict.push_back(ctx.malloc(96));
            ctx.store64(dict.back(), 0, static_cast<std::uint64_t>(i));
        }

        std::uint64_t checksum = 0;
        int mappings_cycled = 0;

        for (int batch = 0; batch < 24; ++batch) {
            // Map a fresh 64 KiB input buffer (file-reader style).
            const cap::Capability input =
                machine.kernel().sysMmap(ctx.thread(), 64 * 1024);
            // "Parse" it: stream writes then reads.
            for (Addr off = 0; off < input.length(); off += 4096)
                ctx.store64(input, off, rng.next());
            for (Addr off = 0; off < input.length(); off += 512)
                checksum ^= ctx.load64(input, roundDown(off, 8));

            // Build index records referencing dictionary entries.
            std::vector<cap::Capability> index;
            for (int r = 0; r < 256; ++r) {
                index.push_back(ctx.malloc(48));
                ctx.storeCap(index.back(), 16,
                             dict[rng.below(dict.size())]);
            }
            // Consume the index: chase into the dictionary.
            for (const auto &rec : index) {
                const cap::Capability word = ctx.loadCap(rec, 16);
                if (word.tag)
                    checksum += ctx.load64(word, 0);
            }

            // Tear the batch down: records to heap quarantine, the
            // mapping to reservation quarantine (§6.2) — its address
            // space cannot be remapped until a revocation pass.
            for (const auto &rec : index)
                ctx.free(rec);
            machine.kernel().sysMunmap(ctx.thread(), input.base,
                                       input.length());
            ++mappings_cycled;

            // Replace a few cold dictionary entries (heap churn).
            for (int k = 0; k < 32; ++k) {
                const auto victim = rng.below(dict.size());
                ctx.free(dict[victim]);
                dict[victim] = ctx.malloc(96);
                ctx.store64(dict[victim], 0, rng.next());
            }
        }

        machine.heap().drain(ctx.thread());
        std::printf("processed 24 batches, checksum %#llx, "
                    "%d mappings cycled through quarantine\n",
                    static_cast<unsigned long long>(checksum),
                    mappings_cycled);
    });

    machine.run();

    const core::RunMetrics m = machine.metrics();
    std::printf("run summary: %s\n", m.summary().c_str());
    std::printf("revocations: %zu; capabilities revoked in memory: "
                "%llu; in registers: %llu\n",
                m.epochs.size(),
                static_cast<unsigned long long>(m.sweep.caps_revoked),
                static_cast<unsigned long long>(m.sweep.regs_revoked));
    return 0;
}
