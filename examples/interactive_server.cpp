/**
 * @file
 * Interactive-workload example: a transactional server (the pgbench
 * surrogate from the workload library) run under each temporal-safety
 * strategy, reporting per-transaction latency percentiles.
 *
 * This is the paper's motivating scenario for Reloaded: CHERIvoke and
 * Cornucopia keep batch throughput acceptable but inject
 * stop-the-world pauses into the latency tail; Reloaded spreads the
 * same revocation work across tiny self-healing load-barrier faults.
 *
 *   $ ./interactive_server [transactions]
 */

#include <cstdio>
#include <cstdlib>

#include "stats/table.h"
#include "workload/pgbench.h"

using namespace crev;

int
main(int argc, char **argv)
{
    workload::PgbenchConfig cfg;
    cfg.transactions =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                 : 4000;

    std::printf("transactional server, %u transactions per run\n\n",
                cfg.transactions);

    stats::Table table({"strategy", "p50_ms", "p90_ms", "p99_ms",
                        "p99.9_ms", "worst_stw_ms", "epochs"});

    for (core::Strategy s :
         {core::Strategy::kBaseline, core::Strategy::kCheriVoke,
          core::Strategy::kCornucopia, core::Strategy::kReloaded}) {
        std::fprintf(stderr, "running %s...\n", core::strategyName(s));
        const auto r = workload::runPgbench(s, cfg);
        double worst_stw = 0;
        for (const auto &e : r.metrics.epochs)
            worst_stw = std::max(worst_stw,
                                 cyclesToMillis(e.stw_duration));
        table.addRow(
            {core::strategyName(s),
             stats::Table::fmt(r.latency_ms.percentile(0.50), 4),
             stats::Table::fmt(r.latency_ms.percentile(0.90), 4),
             stats::Table::fmt(r.latency_ms.percentile(0.99), 4),
             stats::Table::fmt(r.latency_ms.percentile(0.999), 4),
             stats::Table::fmt(worst_stw, 4),
             std::to_string(r.metrics.epochs.size())});
    }

    table.print();
    std::printf("\nNote how the p99/p99.9 gap over baseline tracks "
                "each strategy's worst stop-the-world pause.\n");
    return 0;
}
