/**
 * @file
 * A use-after-reallocation attack, attempted twice.
 *
 * The classic heap UAF exploit: the attacker frees an object, waits
 * (or arranges) for the allocator to reuse its memory for a
 * *privileged* object, then writes through the stale pointer to
 * corrupt it.
 *
 *  - On the spatially-safe baseline (no revocation), the attack
 *    succeeds: the dangling capability aliases the new allocation.
 *  - Under Cornucopia Reloaded, the allocator's quarantine prevents
 *    reuse until revocation has destroyed the dangling capability;
 *    the write attempt is fail-stop.
 *
 *   $ ./uaf_attack
 */

#include <cstdio>
#include <vector>

#include "core/machine.h"
#include "core/mutator.h"
#include "vm/fault.h"

using namespace crev;

namespace {

struct Outcome
{
    bool aliased_new_allocation = false;
    bool faulted = false;
    std::uint64_t secret_after_attack = 0;
};

Outcome
attack(core::Strategy strategy)
{
    Outcome out;
    core::MachineConfig cfg;
    cfg.strategy = strategy;
    cfg.audit = strategy != core::Strategy::kBaseline;
    // Small quarantine so revocation runs promptly.
    cfg.policy.min_bytes = 8 * 1024;
    core::Machine machine(cfg);

    machine.spawnMutator("victim+attacker", 1u << 3,
                         [&](core::Mutator &ctx) {
        // The attacker controls an object...
        cap::Capability pwn = ctx.malloc(64);
        ctx.store64(pwn, 0, 0xBADBADBAD);
        const Addr pwn_base = pwn.base;

        // ...frees it (but keeps the stale pointer)...
        ctx.free(pwn);

        // ...and sprays allocations of the same size class until the
        // allocator hands the same memory to the "privileged" object.
        cap::Capability privileged = cap::Capability::null();
        std::vector<cap::Capability> spray;
        for (int i = 0; i < 4096; ++i) {
            cap::Capability c = ctx.malloc(64);
            ctx.store64(c, 0, 0x5EC2E7); // the secret credential
            if (c.base == pwn_base) {
                privileged = c;
                break;
            }
            spray.push_back(c);
        }

        if (privileged.tag) {
            out.aliased_new_allocation = true;
            // The dangling capability points at the privileged
            // object's memory. Overwrite the credential through it.
            try {
                ctx.store64(pwn, 0, 0xEE11);
            } catch (const vm::CapabilityFault &) {
                out.faulted = true;
            }
            out.secret_after_attack = ctx.load64(privileged, 0);
        } else {
            // Reuse never happened; writing through the stale pointer
            // either touches quarantined memory (harmless: it aliases
            // nothing) or faults once revoked.
            try {
                ctx.store64(pwn, 0, 0);
            } catch (const vm::CapabilityFault &) {
                out.faulted = true;
            }
        }
    });
    machine.run();
    return out;
}

} // namespace

int
main()
{
    std::printf("--- attack vs spatially-safe baseline ---\n");
    const Outcome base = attack(core::Strategy::kBaseline);
    std::printf("memory reused by privileged object: %s\n",
                base.aliased_new_allocation ? "YES" : "no");
    std::printf("secret after attack: %#llx %s\n\n",
                static_cast<unsigned long long>(
                    base.secret_after_attack),
                base.secret_after_attack == 0x5EC2E7
                    ? "(intact)"
                    : "(CORRUPTED — exploit succeeded)");

    std::printf("--- attack vs Cornucopia Reloaded ---\n");
    const Outcome rel = attack(core::Strategy::kReloaded);
    std::printf("memory reused by privileged object: %s\n",
                rel.aliased_new_allocation ? "YES (BUG!)" : "no");
    std::printf("stale-pointer write faulted: %s\n",
                rel.faulted ? "yes (revoked: fail-stop)"
                            : "no (wrote quarantined memory, "
                              "aliasing nothing)");

    const bool defended = !rel.aliased_new_allocation;
    std::printf("\n%s\n", defended
                              ? "Reloaded: use-after-reallocation "
                                "deterministically prevented."
                              : "UNEXPECTED: defence failed");
    return defended ? 0 : 1;
}
